// ModelManager: RCU-style atomic model swap. Old snapshots stay fully
// usable across reloads (zero dropped in-flight queries), generations are
// monotonic, and concurrent readers during a reload are race-free (this
// suite runs under TSan in CI).

#include "serve/model_manager.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "core/model_io.h"
#include "core/transn.h"
#include "serve_test_util.h"
#include "test_graphs.h"

namespace transn {
namespace {

class ModelManagerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_path_ = new std::string(std::string(::testing::TempDir()) +
                                  "/model_manager_model.bin");
    HeteroGraph graph = TwoCommunityNetwork(12, 4);
    TransNModel model(&graph, SmallServeConfig());
    model.Fit();
    ASSERT_TRUE(ExportServingModel(model, *model_path_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(model_path_->c_str());
    delete model_path_;
  }

  static std::string* model_path_;
};

std::string* ModelManagerTest::model_path_ = nullptr;

TEST_F(ModelManagerTest, StartsEmptyAndLoadsGenerationOne) {
  ModelManager manager(QueryServerOptions{});
  EXPECT_EQ(manager.Current(), nullptr);
  EXPECT_EQ(manager.generation(), 0u);

  ASSERT_TRUE(manager.Reload(*model_path_).ok());
  auto model = manager.Current();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->generation, 1u);
  EXPECT_EQ(model->path, *model_path_);
  EXPECT_GT(model->load_seconds, 0.0);
  EXPECT_GE(model->index_build_seconds, 0.0);
  EXPECT_GT(model->store.num_nodes(), 0u);
}

TEST_F(ModelManagerTest, OldSnapshotSurvivesReload) {
  ModelManager manager(QueryServerOptions{});
  ASSERT_TRUE(manager.Reload(*model_path_).ok());
  auto old_snapshot = manager.Current();
  const std::string node = old_snapshot->store.node_name(0);

  ASSERT_TRUE(manager.Reload(*model_path_).ok());
  EXPECT_EQ(manager.generation(), 2u);
  EXPECT_EQ(old_snapshot->generation, 1u);

  // The generation-1 snapshot still answers queries after being replaced.
  QueryResponse r = old_snapshot->server->Handle(node, /*record=*/false);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_FALSE(r.neighbors.empty());
}

TEST_F(ModelManagerTest, FailedReloadKeepsServingAndGeneration) {
  ModelManager manager(QueryServerOptions{});
  ASSERT_TRUE(manager.Reload(*model_path_).ok());

  Status s = manager.Reload(*model_path_ + ".does-not-exist");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(manager.generation(), 1u);
  ASSERT_NE(manager.Current(), nullptr);

  // Generation numbers keep increasing monotonically after a failure.
  ASSERT_TRUE(manager.Reload(*model_path_).ok());
  EXPECT_EQ(manager.generation(), 2u);
}

TEST_F(ModelManagerTest, WarmupRunsAgainstFreshGeneration) {
  ModelManager manager(QueryServerOptions{}, /*warmup_queries=*/8);
  ASSERT_TRUE(manager.Reload(*model_path_).ok());
  // Warmup traffic is unrecorded: the latency histogram stays empty.
  EXPECT_EQ(manager.Current()->server->latency().count(), 0u);
}

TEST_F(ModelManagerTest, ConcurrentReadersDuringReloads) {
  ModelManager manager(QueryServerOptions{});
  ASSERT_TRUE(manager.Reload(*model_path_).ok());
  const std::string node = manager.Current()->store.node_name(0);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto snapshot = manager.Current();
        // record=false is the documented thread-safe entry point.
        QueryResponse r = snapshot->server->Handle(node, /*record=*/false);
        if (!r.status.ok() || r.neighbors.empty()) failures.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(manager.Reload(*model_path_).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(manager.generation(), 6u);
}

}  // namespace
}  // namespace transn
