// End-to-end tests of the epoll HTTP front end: raw HttpServer behavior
// (keep-alive, concurrency, timeouts) and the full ServeApp stack (routing,
// batching, admission control, hot reload) over a real trained model.
// This suite runs under TSan in CI — multi-connection serving must be clean.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "core/model_io.h"
#include "core/transn.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/serve_app.h"
#include "serve/embedding_store.h"
#include "serve_test_util.h"
#include "test_graphs.h"

namespace transn {
namespace net {
namespace {

// --- raw HttpServer --------------------------------------------------------

TEST(HttpServerTest, EchoesOverKeepAliveAndParallelClients) {
  HttpServerOptions opts;
  opts.reactor_threads = 2;
  HttpServer server(opts, [](HttpRequest&& req, ResponseHandle handle) {
    handle.Send(200, "text/plain", req.method + " " + req.path);
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  // Sequential keep-alive requests on one connection.
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 5; ++i) {
    auto r = client.Get("/ping" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->code, 200);
    EXPECT_EQ(r->body, "GET /ping" + std::to_string(i));
  }

  // Concurrent clients across both reactors.
  constexpr int kThreads = 8;
  constexpr int kRequests = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      HttpClient c("127.0.0.1", server.port());
      for (int i = 0; i < kRequests; ++i) {
        auto r = c.Post("/echo", "x");
        if (!r.ok() || r->code != 200 || r->body != "POST /echo") {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

TEST(HttpServerTest, MalformedRequestGets400AndClose) {
  HttpServer server({}, [](HttpRequest&&, ResponseHandle handle) {
    handle.Send(200, "text/plain", "ok");
  });
  ASSERT_TRUE(server.Start().ok());

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char raw[] = "BOGUS\r\n\r\n";
  ASSERT_GT(send(fd, raw, sizeof(raw) - 1, 0), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  EXPECT_EQ(n, 0);  // server closed after the error response
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  close(fd);
  server.Stop();
}

TEST(HttpServerTest, StalledPartialRequestTimesOut) {
  HttpServerOptions opts;
  opts.read_timeout_ms = 150;
  HttpServer server(opts, [](HttpRequest&&, ResponseHandle handle) {
    handle.Send(200, "text/plain", "ok");
  });
  ASSERT_TRUE(server.Start().ok());

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char partial[] = "GET / HTTP/1.1\r\n";  // never finishes
  ASSERT_GT(send(fd, partial, sizeof(partial) - 1, 0), 0);
  // The sweep should close the connection; recv unblocks with EOF well
  // before this generous deadline.
  timeval tv{5, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[64];
  EXPECT_EQ(recv(fd, buf, sizeof(buf), 0), 0);
  close(fd);
  server.Stop();
}

// --- ServeApp over a real model --------------------------------------------

class ServeAppTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_path_ = new std::string(std::string(::testing::TempDir()) +
                                  "/net_server_model.bin");
    HeteroGraph graph = TwoCommunityNetwork(12, 4);
    TransNModel model(&graph, SmallServeConfig());
    model.Fit();
    ASSERT_TRUE(ExportServingModel(model, *model_path_).ok());
    auto store = EmbeddingStore::Load(*model_path_);
    ASSERT_TRUE(store.ok());
    node_names_ = new std::vector<std::string>();
    for (NodeId n = 0; n < store->num_nodes(); ++n) {
      node_names_->push_back(store->node_name(n));
    }
  }
  static void TearDownTestSuite() {
    std::remove(model_path_->c_str());
    delete model_path_;
    delete node_names_;
  }

  /// Starts ServeApp + HttpServer; fills server_/app_.
  void StartServing(size_t max_queue = 1024, size_t reactors = 2) {
    ServeAppOptions app_opts;
    app_opts.model_path = *model_path_;
    app_opts.max_queue = max_queue;
    app_opts.query.k = 3;
    app_ = std::make_unique<ServeApp>(app_opts);
    ASSERT_TRUE(app_->Start().ok());
    HttpServerOptions http_opts;
    http_opts.reactor_threads = reactors;
    server_ = std::make_unique<HttpServer>(
        http_opts, [this](HttpRequest&& req, ResponseHandle handle) {
          app_->HandleRequest(std::move(req), std::move(handle));
        });
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (app_ != nullptr) app_->Stop();
  }

  static std::string* model_path_;
  static std::vector<std::string>* node_names_;
  std::unique_ptr<ServeApp> app_;
  std::unique_ptr<HttpServer> server_;
};

std::string* ServeAppTest::model_path_ = nullptr;
std::vector<std::string>* ServeAppTest::node_names_ = nullptr;

TEST_F(ServeAppTest, RoutesAndStatusCodes) {
  StartServing();
  HttpClient client("127.0.0.1", server_->port());

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->code, 200);
  EXPECT_NE(health->body.find("\"generation\":1"), std::string::npos)
      << health->body;

  auto knn = client.Get("/v1/knn?node=" + node_names_->front());
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->code, 200);
  EXPECT_NE(knn->body.find("\"neighbors\":[{"), std::string::npos)
      << knn->body;

  EXPECT_EQ(client.Get("/v1/knn?node=no-such-node")->code, 404);
  EXPECT_EQ(client.Get("/v1/knn")->code, 400);
  EXPECT_EQ(client.Get("/v1/translate?node=x")->code, 400);
  EXPECT_EQ(client.Get("/nope")->code, 404);
  EXPECT_EQ(client.Post("/v1/knn?node=x", "")->code, 405);
  EXPECT_EQ(client.Get("/admin/reload")->code, 405);

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->code, 200);
  EXPECT_NE(metrics->body.find("transn_net_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("transn_serve_model_load_seconds"),
            std::string::npos);
}

TEST_F(ServeAppTest, QueueFullRejectsWith429RetryAfter) {
  StartServing(/*max_queue=*/0);
  HttpClient client("127.0.0.1", server_->port());
  auto r = client.Get("/v1/knn?node=" + node_names_->front());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->code, 429);
  EXPECT_EQ(r->Header("retry-after"), "1");
  // Control endpoints bypass admission control.
  EXPECT_EQ(client.Get("/healthz")->code, 200);
}

TEST_F(ServeAppTest, HotReloadMidTrafficDropsNothing) {
  StartServing();
  constexpr int kClientThreads = 4;
  constexpr int kRequests = 40;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      HttpClient c("127.0.0.1", server_->port());
      for (int i = 0; i < kRequests; ++i) {
        const std::string& node =
            (*node_names_)[(t * kRequests + i) % node_names_->size()];
        auto r = c.Get("/v1/knn?node=" + node);
        if (!r.ok() || r->code != 200) bad.fetch_add(1);
      }
    });
  }
  // Fire several reloads while the clients hammer the query path.
  HttpClient admin("127.0.0.1", server_->port());
  int reloads = 0;
  for (int i = 0; i < 5; ++i) {
    auto r = admin.Post("/admin/reload", "");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->code, 200) << r->body;
    ++reloads;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0) << "queries failed during hot reload";
  EXPECT_EQ(app_->manager().generation(),
            static_cast<uint64_t>(1 + reloads));
}

TEST_F(ServeAppTest, TranslateEndpointResolvesEmbedding) {
  StartServing();
  auto store = EmbeddingStore::Load(*model_path_);
  ASSERT_TRUE(store.ok());
  ASSERT_FALSE(store->views().empty());
  const std::string view = store->view(0).name;
  HttpClient client("127.0.0.1", server_->port());
  auto r = client.Get("/v1/translate?node=" + node_names_->front() +
                      "&view=" + view);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->code, 200) << r->body;
  EXPECT_NE(r->body.find("\"embedding\":["), std::string::npos);
  EXPECT_EQ(client.Get("/v1/translate?node=" + node_names_->front() +
                       "&view=definitely-not-a-view")
                ->code,
            404);
}

}  // namespace
}  // namespace net
}  // namespace transn
