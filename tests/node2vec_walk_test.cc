#include "walk/node2vec_walk.h"

#include <map>

#include <gtest/gtest.h>
#include "graph/view.h"
#include "test_graphs.h"

namespace transn {
namespace {

// Triangle 0-1-2 plus a pendant 3 attached to 1. From 0 -> 1 the options
// are: return to 0 (bias 1/p), triangle-close to 2 (bias 1), pendant 3
// (bias 1/q). Unit weights.
ViewGraph TrianglePlusPendant() {
  return ViewGraph::FromEdges(
      {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}, {1, 3, 1.0}});
}

std::map<ViewGraph::LocalId, double> SecondStepDistribution(double p, double q,
                                                            uint64_t seed) {
  ViewGraph vg = TrianglePlusPendant();
  Node2VecWalker walker(&vg, {.p = p, .q = q, .walk_length = 3});
  Rng rng(seed);
  std::map<ViewGraph::LocalId, int> counts;
  int total = 0;
  ViewGraph::LocalId start = vg.ToLocal(0), mid = vg.ToLocal(1);
  for (int i = 0; i < 60000; ++i) {
    auto walk = walker.Walk(start, rng);
    if (walk.size() < 3 || walk[1] != mid) continue;
    ++counts[walk[2]];
    ++total;
  }
  std::map<ViewGraph::LocalId, double> out;
  for (auto& [n, c] : counts) out[n] = static_cast<double>(c) / total;
  return out;
}

TEST(Node2VecWalkTest, UnitPqIsFirstOrder) {
  ViewGraph vg = TrianglePlusPendant();
  auto dist = SecondStepDistribution(1.0, 1.0, 1);
  EXPECT_NEAR(dist[vg.ToLocal(0)], 1.0 / 3.0, 0.02);
  EXPECT_NEAR(dist[vg.ToLocal(2)], 1.0 / 3.0, 0.02);
  EXPECT_NEAR(dist[vg.ToLocal(3)], 1.0 / 3.0, 0.02);
}

TEST(Node2VecWalkTest, HighPDiscouragesReturning) {
  ViewGraph vg = TrianglePlusPendant();
  auto dist = SecondStepDistribution(10.0, 1.0, 2);
  // biases: return 0.1, close 1, out 1 -> P(return) = 0.1/2.1.
  EXPECT_NEAR(dist[vg.ToLocal(0)], 0.1 / 2.1, 0.01);
}

TEST(Node2VecWalkTest, HighQKeepsWalkLocal) {
  ViewGraph vg = TrianglePlusPendant();
  auto dist = SecondStepDistribution(1.0, 10.0, 3);
  // biases: return 1, close 1, out 0.1 -> P(out) = 0.1/2.1.
  EXPECT_NEAR(dist[vg.ToLocal(3)], 0.1 / 2.1, 0.01);
}

TEST(Node2VecWalkTest, WalksFollowEdges) {
  HeteroGraph g = TwoCommunityNetwork(20, 4);
  ViewGraph flat = FlattenToViewGraph(g);
  Node2VecWalker walker(&flat, {.p = 0.5, .q = 2.0, .walk_length = 20});
  Rng rng(4);
  auto walk = walker.Walk(0, rng);
  EXPECT_EQ(walk.size(), 20u);
  for (size_t k = 0; k + 1 < walk.size(); ++k) {
    EXPECT_TRUE(flat.AreAdjacent(walk[k], walk[k + 1]));
  }
}

TEST(Node2VecWalkTest, CorpusSizeIsWalksPerNodeTimesNodes) {
  ViewGraph vg = TrianglePlusPendant();
  Node2VecWalker walker(&vg, {.walk_length = 5, .walks_per_node = 3});
  Rng rng(5);
  EXPECT_EQ(walker.SampleCorpus(rng).size(), 12u);
}

}  // namespace
}  // namespace transn
