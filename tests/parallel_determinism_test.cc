// Determinism and statistical-equivalence regression tests for parallel
// training (TransNConfig::num_threads):
//  * num_threads == 1 must stay bit-reproducible: same seed => byte-identical
//    embeddings, for SingleViewTrainer alone and for full TransN training.
//  * num_threads > 1 (the episodic block engine) must ALSO be
//    bit-deterministic: same (seed, threads, episode_blocks_per_thread) =>
//    byte-identical embeddings across runs, with and without the episode
//    scheduler (episode_blocks_per_thread 1 vs 4) — the engine's disjoint
//    block ownership makes the result independent of OS scheduling.
//  * multi-thread runs must be statistically equivalent to sequential ones
//    on an HSBM network: training still converges (equal-or-better mean loss
//    within tolerance) and downstream micro-F1 stays within tolerance.
//  * the hierarchical-softmax path keeps racing Hogwild at > 1 threads; it
//    is only checked for finiteness (and TSan cleanliness), not determinism.
// The 4-thread tests double as TSan targets for the whole parallel stack.

#include <cmath>

#include <gtest/gtest.h>
#include "core/transn.h"
#include "data/hsbm.h"
#include "eval/node_classification.h"
#include "graph/view.h"

namespace transn {
namespace {

HeteroGraph TestHsbm() {
  HsbmSpec spec;
  spec.node_types = {{"User", 80}, {"Item", 50}};
  spec.edge_types = {
      {.name = "UU", .type_a = 0, .type_b = 0, .num_edges = 300},
      {.name = "UI",
       .type_a = 0,
       .type_b = 1,
       .num_edges = 300,
       .weighted = true},
  };
  spec.num_communities = 3;
  spec.labeled_type = 0;
  spec.seed = 21;
  return GenerateHsbm(spec);
}

TransNConfig TestConfig(size_t num_threads) {
  TransNConfig cfg;
  cfg.dim = 16;
  cfg.iterations = 3;
  cfg.seed = 33;
  cfg.num_threads = num_threads;
  cfg.walk.walk_length = 10;
  cfg.walk.min_walks_per_node = 2;
  cfg.walk.max_walks_per_node = 4;
  cfg.sgns.negatives = 3;
  cfg.translator_encoders = 1;
  cfg.translator_seq_len = 4;
  cfg.cross_paths_per_pair = 10;
  return cfg;
}

void ExpectTablesIdentical(const EmbeddingTable& a, const EmbeddingTable& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.dim(), b.dim());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.dim(); ++c) {
      ASSERT_EQ(a.Row(r)[c], b.Row(r)[c]) << "row " << r << " col " << c;
    }
  }
}

TEST(ParallelDeterminismTest, SingleViewOneThreadByteIdentical) {
  HeteroGraph g = TestHsbm();
  std::vector<View> views = BuildViews(g);
  TransNConfig cfg = TestConfig(1);
  auto run = [&](int iterations) {
    Rng rng(cfg.seed);
    auto trainer = std::make_unique<SingleViewTrainer>(&views[0], cfg, rng);
    for (int i = 0; i < iterations; ++i) trainer->RunIteration(rng);
    return trainer;
  };
  auto a = run(2);
  auto b = run(2);
  ExpectTablesIdentical(a->embeddings(), b->embeddings());
  ExpectTablesIdentical(a->context_embeddings(), b->context_embeddings());
}

TEST(ParallelDeterminismTest, FullTrainOneThreadByteIdentical) {
  HeteroGraph g = TestHsbm();
  TransNConfig cfg = TestConfig(1);
  TransNModel model_a(&g, cfg);
  model_a.Fit();
  TransNModel model_b(&g, cfg);
  model_b.Fit();
  Matrix emb_a = model_a.FinalEmbeddings();
  Matrix emb_b = model_b.FinalEmbeddings();
  ASSERT_EQ(emb_a.rows(), emb_b.rows());
  ASSERT_EQ(emb_a.cols(), emb_b.cols());
  for (size_t r = 0; r < emb_a.rows(); ++r) {
    for (size_t c = 0; c < emb_a.cols(); ++c) {
      ASSERT_EQ(emb_a(r, c), emb_b(r, c)) << "row " << r << " col " << c;
    }
  }
  // The losses of the two runs must match exactly, too.
  ASSERT_EQ(model_a.history().size(), model_b.history().size());
  for (size_t i = 0; i < model_a.history().size(); ++i) {
    EXPECT_EQ(model_a.history()[i].mean_single_view_loss,
              model_b.history()[i].mean_single_view_loss);
    EXPECT_EQ(model_a.history()[i].mean_cross_view_loss,
              model_b.history()[i].mean_cross_view_loss);
  }
}

TEST(ParallelDeterminismTest, MultiThreadSameSeedByteIdentical) {
  // The tentpole determinism contract of the episodic block engine: for any
  // fixed (seed, num_threads, episode_blocks_per_thread), two full training
  // runs — walks, SGNS episodes, cross-view, final averaging — produce
  // byte-identical embeddings and identical loss histories. Covered with
  // the episode scheduler off (1 block per worker: static partition) and on
  // (4 blocks per worker).
  HeteroGraph g = TestHsbm();
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t blocks : {size_t{1}, size_t{4}}) {
      TransNConfig cfg = TestConfig(threads);
      cfg.iterations = 2;
      cfg.episode_blocks_per_thread = blocks;
      TransNModel model_a(&g, cfg);
      model_a.Fit();
      TransNModel model_b(&g, cfg);
      model_b.Fit();
      const Matrix emb_a = model_a.FinalEmbeddings();
      const Matrix emb_b = model_b.FinalEmbeddings();
      ASSERT_EQ(emb_a.rows(), emb_b.rows());
      ASSERT_EQ(emb_a.cols(), emb_b.cols());
      for (size_t r = 0; r < emb_a.rows(); ++r) {
        for (size_t c = 0; c < emb_a.cols(); ++c) {
          ASSERT_EQ(emb_a(r, c), emb_b(r, c))
              << "threads " << threads << " blocks " << blocks << " row " << r
              << " col " << c;
        }
      }
      ASSERT_EQ(model_a.history().size(), model_b.history().size());
      for (size_t i = 0; i < model_a.history().size(); ++i) {
        EXPECT_EQ(model_a.history()[i].mean_single_view_loss,
                  model_b.history()[i].mean_single_view_loss)
            << "threads " << threads << " blocks " << blocks << " iter " << i;
        EXPECT_EQ(model_a.history()[i].mean_cross_view_loss,
                  model_b.history()[i].mean_cross_view_loss)
            << "threads " << threads << " blocks " << blocks << " iter " << i;
      }
    }
  }
}

TEST(ParallelDeterminismTest, ThreadCountAndBlocksSelectDistinctStreams) {
  // Different thread counts (and different episode granularities) draw
  // different RNG streams, so they legitimately land on different bits —
  // the determinism contract is per configuration, not across them. Guards
  // against an accidental "all configs collapse to sequential" stub.
  HeteroGraph g = TestHsbm();
  TransNConfig cfg1 = TestConfig(1);
  cfg1.iterations = 1;
  TransNConfig cfg4 = TestConfig(4);
  cfg4.iterations = 1;
  TransNModel seq(&g, cfg1);
  seq.Fit();
  TransNModel par(&g, cfg4);
  par.Fit();
  const Matrix emb_seq = seq.FinalEmbeddings();
  const Matrix emb_par = par.FinalEmbeddings();
  bool any_diff = false;
  for (size_t r = 0; r < emb_seq.rows() && !any_diff; ++r) {
    for (size_t c = 0; c < emb_seq.cols() && !any_diff; ++c) {
      any_diff = emb_seq(r, c) != emb_par(r, c);
    }
  }
  EXPECT_TRUE(any_diff)
      << "1-thread and 4-thread runs produced identical bits; the parallel "
         "path is likely not running";
}

TEST(ParallelDeterminismTest, HogwildConvergesToEquivalentLoss) {
  HeteroGraph g = TestHsbm();

  TransNModel seq(&g, TestConfig(1));
  seq.Fit();
  TransNModel par(&g, TestConfig(4));
  par.Fit();

  const double seq_loss = seq.history().back().mean_single_view_loss;
  const double par_first = par.history().front().mean_single_view_loss;
  const double par_loss = par.history().back().mean_single_view_loss;

  // Hogwild training must make progress...
  EXPECT_LT(par_loss, par_first);
  // ...and land at an equal-or-better mean loss than sequential training,
  // within a tolerance absorbing benign-race noise.
  EXPECT_LE(par_loss, seq_loss * 1.25 + 0.05)
      << "4-thread loss " << par_loss << " vs 1-thread " << seq_loss;

  // Both runs must have processed the same walk/pair volume: sharding may
  // not drop or duplicate work.
  EXPECT_EQ(par.history().back().single_view_walks,
            seq.history().back().single_view_walks);
  EXPECT_EQ(par.history().back().single_view_pairs,
            seq.history().back().single_view_pairs);
}

TEST(ParallelDeterminismTest, HogwildMicroF1WithinTolerance) {
  HeteroGraph g = TestHsbm();

  TransNModel seq(&g, TestConfig(1));
  seq.Fit();
  TransNModel par(&g, TestConfig(4));
  par.Fit();

  NodeClassificationConfig eval;
  eval.repeats = 5;
  eval.seed = 7;
  const NodeClassificationResult f1_seq =
      EvaluateNodeClassification(g, seq.FinalEmbeddings(), eval);
  const NodeClassificationResult f1_par =
      EvaluateNodeClassification(g, par.FinalEmbeddings(), eval);

  EXPECT_GE(f1_par.micro_f1, f1_seq.micro_f1 - 0.2)
      << "4-thread micro-F1 " << f1_par.micro_f1 << " vs 1-thread "
      << f1_seq.micro_f1;
}

TEST(ParallelDeterminismTest, ZeroThreadsResolvesToHardwareAndTrains) {
  // num_threads = 0 selects hardware concurrency; on any machine this must
  // produce finite embeddings (on a single-core host it degrades to the
  // sequential path).
  HeteroGraph g = TestHsbm();
  TransNConfig cfg = TestConfig(0);
  cfg.iterations = 1;
  TransNModel model(&g, cfg);
  model.Fit();
  Matrix emb = model.FinalEmbeddings();
  for (size_t r = 0; r < emb.rows(); ++r) {
    for (size_t c = 0; c < emb.cols(); ++c) {
      ASSERT_TRUE(std::isfinite(emb(r, c)));
    }
  }
}

TEST(ParallelDeterminismTest, HogwildHierarchicalSoftmaxPath) {
  // The hierarchical-softmax trainer is the other Hogwild update rule; run
  // it with 4 threads (TSan coverage) and check the result stays finite.
  HeteroGraph g = TestHsbm();
  std::vector<View> views = BuildViews(g);
  TransNConfig cfg = TestConfig(4);
  cfg.use_hierarchical_softmax = true;
  ThreadPool pool(4);
  Rng rng(cfg.seed);
  SingleViewTrainer trainer(&views[0], cfg, rng);
  ASSERT_TRUE(trainer.uses_hierarchical_softmax());
  for (int i = 0; i < 2; ++i) trainer.RunIteration(rng, &pool);
  for (size_t r = 0; r < trainer.embeddings().num_rows(); ++r) {
    for (size_t c = 0; c < trainer.embeddings().dim(); ++c) {
      ASSERT_TRUE(std::isfinite(trainer.embeddings().Row(r)[c]));
    }
  }
}

}  // namespace
}  // namespace transn
