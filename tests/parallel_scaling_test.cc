// Scaling regression test for the episodic block engine: on a multi-core
// machine, 4-thread single-view training must actually outrun the sequential
// path (the pre-engine Hogwild implementation scaled flat — ~1.0x at any
// thread count — which this test exists to keep from coming back), and the
// parallel run's embedding quality (link-prediction AUC) must stay within
// tolerance of the sequential run. Throughput assertions are skipped on
// hosts with fewer than 4 hardware threads, where a speedup is physically
// impossible; the quality and volume assertions always run.

#include <cmath>
#include <cstdio>
#include <thread>

#include <gtest/gtest.h>
#include "core/transn.h"
#include "data/hsbm.h"
#include "eval/link_prediction.h"

namespace transn {
namespace {

HeteroGraph ScalingHsbm() {
  HsbmSpec spec;
  spec.node_types = {{"User", 600}, {"Item", 300}};
  spec.edge_types = {
      {.name = "UU", .type_a = 0, .type_b = 0, .num_edges = 2400},
      {.name = "UI",
       .type_a = 0,
       .type_b = 1,
       .num_edges = 2400,
       .weighted = true},
  };
  spec.num_communities = 3;
  spec.labeled_type = 0;
  spec.seed = 77;
  return GenerateHsbm(spec);
}

TransNConfig ScalingConfig(size_t num_threads) {
  TransNConfig cfg;
  cfg.dim = 32;
  cfg.iterations = 2;
  cfg.seed = 55;
  cfg.num_threads = num_threads;
  cfg.walk.walk_length = 16;
  cfg.walk.min_walks_per_node = 2;
  cfg.walk.max_walks_per_node = 6;
  cfg.sgns.negatives = 3;
  cfg.enable_cross_view = false;  // isolate the single-view hot path
  return cfg;
}

/// Trains on `g` and returns total single-view pairs/sec across iterations.
double MeasurePairsPerSec(const HeteroGraph& g, const TransNConfig& cfg,
                          Matrix* embeddings_out, size_t* pairs_out) {
  TransNModel model(&g, cfg);
  model.Fit();
  size_t pairs = 0;
  double seconds = 0.0;
  for (const TransNIterationStats& s : model.history()) {
    pairs += s.single_view_pairs;
    seconds += s.single_view_seconds;
  }
  if (embeddings_out != nullptr) *embeddings_out = model.FinalEmbeddings();
  if (pairs_out != nullptr) *pairs_out = pairs;
  return seconds > 0.0 ? static_cast<double>(pairs) / seconds : 0.0;
}

TEST(ParallelScalingTest, FourThreadsScaleAndPreserveQuality) {
  const HeteroGraph full = ScalingHsbm();
  // Train on the link-prediction residual so AUC is measured on held-out
  // edges for both runs.
  LinkPredictionConfig lp;
  lp.removal_fraction = 0.3;
  lp.seed = 19;
  const LinkPredictionTask task = MakeLinkPredictionTask(full, lp);

  Matrix emb_seq, emb_par;
  size_t pairs_seq = 0, pairs_par = 0;
  const double pps_seq =
      MeasurePairsPerSec(task.residual, ScalingConfig(1), &emb_seq, &pairs_seq);
  const double pps_par =
      MeasurePairsPerSec(task.residual, ScalingConfig(4), &emb_par, &pairs_par);
  ASSERT_GT(pps_seq, 0.0);
  ASSERT_GT(pps_par, 0.0);

  // The engine must not drop or duplicate work at any thread count.
  EXPECT_EQ(pairs_par, pairs_seq);

  // Embedding quality: the 4-thread run's held-out AUC stays within
  // tolerance of the sequential run (different RNG streams => different
  // bits, but statistically equivalent embeddings).
  const double auc_seq = ScoreLinkPrediction(emb_seq, task);
  const double auc_par = ScoreLinkPrediction(emb_par, task);
  EXPECT_GT(auc_seq, 0.6) << "sequential baseline failed to learn";
  EXPECT_GE(auc_par, auc_seq - 0.05)
      << "4-thread AUC " << auc_par << " vs 1-thread " << auc_seq;

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_threads=%u 1-thread=%.0f pairs/s 4-thread=%.0f "
              "pairs/s speedup=%.2fx auc_seq=%.3f auc_par=%.3f\n",
              hw, pps_seq, pps_par, pps_par / pps_seq, auc_seq, auc_par);
  if (hw < 4) {
    GTEST_SKIP() << "only " << hw
                 << " hardware threads; a 4-thread speedup is not "
                    "measurable on this machine (throughput floor enforced "
                    "by scripts/check_bench_regression.py per machine class)";
  }
  // On >= 4 cores the episodic engine must deliver a real speedup. The
  // pre-engine Hogwild path measured ~1.0x here; 2.0x is the committed
  // floor (the bench gate holds the t8 path to 4.0x on >= 8 cores).
  EXPECT_GE(pps_par, 2.0 * pps_seq)
      << "4-thread throughput " << pps_par << " pairs/s is below 2x the "
      << "1-thread " << pps_seq << " pairs/s — parallel scaling regressed";
}

TEST(ParallelScalingTest, EpisodeSchedulerMatchesVolumeAndStaysFinite) {
  // The episode scheduler (episode_blocks_per_thread > 1) must process the
  // same pair volume as the static partition and produce finite embeddings.
  const HeteroGraph g = ScalingHsbm();
  TransNConfig cfg = ScalingConfig(4);
  cfg.iterations = 1;

  Matrix emb_static, emb_episodic;
  size_t pairs_static = 0, pairs_episodic = 0;
  cfg.episode_blocks_per_thread = 1;
  MeasurePairsPerSec(g, cfg, &emb_static, &pairs_static);
  cfg.episode_blocks_per_thread = 4;
  MeasurePairsPerSec(g, cfg, &emb_episodic, &pairs_episodic);

  EXPECT_EQ(pairs_episodic, pairs_static);
  for (size_t r = 0; r < emb_episodic.rows(); ++r) {
    for (size_t c = 0; c < emb_episodic.cols(); ++c) {
      ASSERT_TRUE(std::isfinite(emb_episodic(r, c)))
          << "row " << r << " col " << c;
    }
  }
}

}  // namespace
}  // namespace transn
