/// Property-based sweeps over randomized inputs: analytic walk transition
/// probabilities (Eq. 4-7) against empirical frequencies, autograd chains
/// against numeric differentiation, metric invariances, and generator
/// invariants, each parameterized over seeds.

#include <cmath>
#include <map>

#include <gtest/gtest.h>
#include "data/hsbm.h"
#include "eval/metrics.h"
#include "graph/view.h"
#include "nn/grad_check.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "walk/random_walk.h"

namespace transn {
namespace {

// ---------------------------------------------------------------------
// Walk transitions match Equation (4) analytically.
// ---------------------------------------------------------------------

class WalkTransitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(WalkTransitionProperty, EmpiricalMatchesEq4) {
  Rng gen(GetParam());
  // Random small weighted bipartite (heter) graph.
  const size_t left = 3 + gen.NextUint64(3);
  const size_t right = 3 + gen.NextUint64(3);
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  for (NodeId u = 0; u < left; ++u) {
    for (NodeId v = 0; v < right; ++v) {
      if (gen.NextBernoulli(0.7)) {
        edges.emplace_back(u, left + v,
                           std::floor(gen.NextDouble(1.0, 6.0)));
      }
    }
  }
  if (edges.size() < 4) GTEST_SKIP() << "degenerate sample";
  ViewGraph graph = ViewGraph::FromEdges(edges);

  RandomWalker walker(&graph, /*is_heter=*/true, {.walk_length = 3});
  Rng rng(GetParam() * 131 + 7);

  // Empirical second-step distribution conditioned on (start, mid).
  const ViewGraph::LocalId start = 0;
  std::map<ViewGraph::LocalId, std::map<ViewGraph::LocalId, int>> counts;
  std::map<ViewGraph::LocalId, int> mid_counts;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    auto walk = walker.Walk(start, rng);
    if (walk.size() < 3) continue;
    ++counts[walk[1]][walk[2]];
    ++mid_counts[walk[1]];
  }

  // Analytic Eq. 4 for each observed (start -> mid) pair.
  for (const auto& [mid, next_counts] : counts) {
    if (mid_counts[mid] < 3000) continue;  // not enough mass to compare
    // Weight of the edge taken into mid.
    double w_prev = 0.0;
    for (size_t k = 0; k < graph.degree(start); ++k) {
      if (graph.NeighborIds(start)[k] == mid) {
        w_prev = graph.NeighborWeights(start)[k];
      }
    }
    const double delta = graph.WeightSpread(mid);
    const size_t deg = graph.degree(mid);
    std::vector<double> probs(deg);
    double total = 0.0;
    for (size_t k = 0; k < deg; ++k) {
      double p = graph.NeighborWeights(mid)[k];  // π1
      if (delta > 0.0) {
        p *= std::max(
            0.0, 1.0 - (graph.NeighborWeights(mid)[k] - w_prev) / delta);
      }
      probs[k] = p;
      total += p;
    }
    if (total <= 0.0) {
      total = 0.0;
      for (size_t k = 0; k < deg; ++k) {
        probs[k] = graph.NeighborWeights(mid)[k];
        total += probs[k];
      }
    }
    for (size_t k = 0; k < deg; ++k) {
      const ViewGraph::LocalId next = graph.NeighborIds(mid)[k];
      const double expected = probs[k] / total;
      auto it = next_counts.find(next);
      const double observed =
          it == next_counts.end()
              ? 0.0
              : static_cast<double>(it->second) / mid_counts[mid];
      EXPECT_NEAR(observed, expected, 0.04)
          << "mid=" << mid << " next=" << next << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkTransitionProperty,
                         ::testing::Range(1, 7));

// ---------------------------------------------------------------------
// Autograd chains vs numeric gradients over random shapes.
// ---------------------------------------------------------------------

class AutogradChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(AutogradChainProperty, RandomChainMatchesNumeric) {
  Rng gen(GetParam() * 17 + 3);
  const size_t rows = 2 + gen.NextUint64(4);
  const size_t cols = 2 + gen.NextUint64(4);
  Matrix x0 = GaussianInit(rows, cols, 1.0, gen);
  Matrix w = GaussianInit(rows, rows, 0.7, gen);
  Matrix target = GaussianInit(rows, cols, 1.0, gen);
  const int variant = GetParam() % 3;

  auto build = [&](Tape& tape, const Matrix& probe, bool grad) {
    Var x = tape.Input(probe, grad);
    Var wv = tape.Input(w, false);
    Var t = tape.Input(target, false);
    Var h;
    switch (variant) {
      case 0:
        h = Sigmoid(MatMul(wv, x));
        break;
      case 1:
        h = MatMul(RowSoftmax(Scale(MatMul(x, Transpose(x)), 0.3)), x);
        break;
      default:
        h = Relu(Add(MatMul(wv, x), x));
        break;
    }
    return RowCosineLoss(h, t);
  };

  Tape tape;
  Var loss = build(tape, x0, true);
  tape.Backward(loss);
  // Var of x is node 0 on the tape.
  Matrix analytic;
  {
    Tape probe_tape;
    Var x = probe_tape.Input(x0, true);
    Var wv = probe_tape.Input(w, false);
    Var t = probe_tape.Input(target, false);
    Var h;
    switch (variant) {
      case 0:
        h = Sigmoid(MatMul(wv, x));
        break;
      case 1:
        h = MatMul(RowSoftmax(Scale(MatMul(x, Transpose(x)), 0.3)), x);
        break;
      default:
        h = Relu(Add(MatMul(wv, x), x));
        break;
    }
    probe_tape.Backward(RowCosineLoss(h, t));
    analytic = x.grad();
  }
  Matrix numeric = NumericGradient(
      [&](const Matrix& probe) {
        Tape t2;
        return build(t2, probe, false).value()(0, 0);
      },
      x0);
  EXPECT_LT(MaxRelativeError(analytic, numeric, 1e-3), 1e-4)
      << "variant " << variant;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradChainProperty,
                         ::testing::Range(1, 10));

// ---------------------------------------------------------------------
// Metric invariances.
// ---------------------------------------------------------------------

class AucInvarianceProperty : public ::testing::TestWithParam<int> {};

TEST_P(AucInvarianceProperty, MonotoneTransformPreservesAuc) {
  Rng rng(GetParam() * 29);
  const size_t n = 50;
  std::vector<double> scores(n);
  std::vector<bool> labels(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = rng.NextBernoulli(0.4);
    scores[i] = rng.NextGaussian() + (labels[i] ? 0.8 : 0.0);
  }
  const double base = Auc(scores, labels);
  std::vector<double> transformed(n);
  for (size_t i = 0; i < n; ++i) {
    transformed[i] = std::exp(0.5 * scores[i]) + 3.0;  // strictly monotone
  }
  EXPECT_NEAR(Auc(transformed, labels), base, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucInvarianceProperty,
                         ::testing::Range(1, 8));

TEST(SoftmaxInvarianceProperty, RowShiftInvariant) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a = GaussianInit(3, 5, 2.0, rng);
    Matrix shifted = a;
    for (size_t r = 0; r < a.rows(); ++r) {
      const double shift = rng.NextDouble(-50.0, 50.0);
      for (size_t c = 0; c < a.cols(); ++c) shifted(r, c) += shift;
    }
    Matrix sa = RowSoftmax(a);
    Matrix sb = RowSoftmax(shifted);
    for (size_t i = 0; i < sa.size(); ++i) {
      ASSERT_NEAR(sa.data()[i], sb.data()[i], 1e-12);
    }
  }
}

// ---------------------------------------------------------------------
// Generator invariants across random specs.
// ---------------------------------------------------------------------

class HsbmInvariantProperty : public ::testing::TestWithParam<int> {};

TEST_P(HsbmInvariantProperty, NoIsolatedNodesAndSaneCounts) {
  Rng gen(GetParam() * 41);
  HsbmSpec spec;
  spec.node_types = {{"A", 30 + gen.NextUint64(100)},
                     {"B", 10 + gen.NextUint64(50)}};
  spec.edge_types = {
      {.name = "AA", .type_a = 0, .type_b = 0,
       .num_edges = 100 + gen.NextUint64(300),
       .intra_community_prob = gen.NextDouble(0.5, 0.95),
       .community_correlation = gen.NextDouble()},
      {.name = "AB", .type_a = 0, .type_b = 1,
       .num_edges = 80 + gen.NextUint64(200),
       .intra_community_prob = gen.NextDouble(0.5, 0.95),
       .community_correlation = gen.NextDouble(),
       .weighted = gen.NextBernoulli(0.5),
       .community_weight_levels = gen.NextBernoulli(0.5)},
  };
  spec.num_communities = 2 + gen.NextUint64(6);
  spec.labeled_fraction = gen.NextDouble(0.2, 1.0);
  spec.seed = GetParam();
  HeteroGraph g = GenerateHsbm(spec);

  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    ASSERT_GT(g.degree(n), 0u);
  }
  EXPECT_EQ(g.num_nodes(),
            spec.node_types[0].count + spec.node_types[1].count);
  for (size_t e = 0; e < g.num_edges(); ++e) {
    ASSERT_GT(g.edge_weight(e), 0.0);
  }
  // Views are well-formed (no Definition-4 violation, no isolated nodes).
  for (const View& v : BuildViews(g)) {
    for (ViewGraph::LocalId l = 0; l < v.graph.num_nodes(); ++l) {
      ASSERT_GT(v.graph.degree(l), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HsbmInvariantProperty,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace transn
