#include "serve/query_server.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "core/transn.h"
#include "serve/ann_index.h"
#include "serve/serving_writer.h"
#include "serve_test_util.h"
#include "test_graphs.h"

namespace transn {
namespace {

class QueryServerTest : public ::testing::Test {
 protected:
  QueryServerTest() : graph_(TwoCommunityNetwork(12, 4)) {
    TransNModel model(&graph_, SmallServeConfig());
    model.Fit();
    store_ = std::make_unique<EmbeddingStore>(
        ExportAndLoad(model, "qs_model.bin"));
  }

  /// Every node's name (unnamed nodes serialize as "n<id>").
  std::vector<std::string> AllNames() const {
    std::vector<std::string> names;
    for (NodeId n = 0; n < store_->num_nodes(); ++n) {
      names.push_back(store_->node_name(n));
    }
    return names;
  }

  HeteroGraph graph_;
  std::unique_ptr<EmbeddingStore> store_;
};

TEST_F(QueryServerTest, BatchIsIdenticalSingleVsMultiThreaded) {
  // friendship view as target: persons resolve directly, tags go through
  // the cold-start translation path, and one name is unknown — all three
  // kinds must come back byte-identical for any thread count.
  QueryServerOptions opts;
  opts.target_view = 0;
  opts.k = 5;
  std::vector<std::string> names = AllNames();
  names.push_back("no-such-node");

  opts.num_threads = 1;
  QueryServer serial(store_.get(), opts);
  opts.num_threads = 4;
  QueryServer threaded(store_.get(), opts);

  std::vector<QueryResponse> a = serial.HandleBatch(names);
  std::vector<QueryResponse> b = threaded.HandleBatch(names);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status.code(), b[i].status.code()) << names[i];
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].translated, b[i].translated);
    EXPECT_EQ(a[i].chain, b[i].chain);
    ASSERT_EQ(a[i].neighbors.size(), b[i].neighbors.size()) << names[i];
    for (size_t j = 0; j < a[i].neighbors.size(); ++j) {
      EXPECT_EQ(a[i].neighbors[j].node, b[i].neighbors[j].node);
      EXPECT_EQ(a[i].neighbors[j].score, b[i].neighbors[j].score);
    }
  }
  // Both servers recorded one latency sample per request.
  EXPECT_EQ(serial.latency().count(), names.size());
  EXPECT_EQ(threaded.latency().count(), names.size());
}

TEST_F(QueryServerTest, SingleExactQueryShardsAcrossThePool) {
  // A single request on a threaded exact server fans its O(N) scan across
  // the pool shards; the (score desc, row asc) merge must reproduce the
  // inline scan exactly.
  QueryServerOptions opts;
  opts.target_view = 0;
  opts.k = 8;
  opts.num_threads = 1;
  QueryServer serial(store_.get(), opts);
  opts.num_threads = 4;
  QueryServer threaded(store_.get(), opts);
  for (const std::string& name : AllNames()) {
    const QueryResponse a = serial.Handle(name);
    const QueryResponse b = threaded.Handle(name);
    EXPECT_EQ(a.status.code(), b.status.code()) << name;
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << name;
    for (size_t j = 0; j < a.neighbors.size(); ++j) {
      EXPECT_EQ(a.neighbors[j].node, b.neighbors[j].node) << name;
      EXPECT_EQ(a.neighbors[j].score, b.neighbors[j].score) << name;
    }
  }
}

TEST_F(QueryServerTest, ColdStartQueryIsTranslatedIntoTargetView) {
  QueryServerOptions opts;
  opts.target_view = 0;  // friendship: persons only
  opts.k = 4;
  QueryServer server(store_.get(), opts);

  const NodeId tag = static_cast<NodeId>(2 * 12);  // first tag node
  ASSERT_LT(store_->view(0).LocalOf(tag), 0);
  QueryResponse resp = server.Handle(store_->node_name(tag));
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.node, tag);
  EXPECT_TRUE(resp.translated);
  EXPECT_EQ(resp.chain, (std::vector<uint32_t>{1, 0}));
  ASSERT_EQ(resp.neighbors.size(), 4u);
  for (const ScoredNode& n : resp.neighbors) {
    EXPECT_GE(store_->view(0).LocalOf(n.node), 0)
        << "neighbor outside target view";
  }
}

TEST_F(QueryServerTest, ExcludeSelfDropsTheQueryNode) {
  QueryServerOptions opts;
  opts.k = 3;
  opts.exclude_self = true;
  QueryServer with(store_.get(), opts);
  opts.exclude_self = false;
  QueryServer without(store_.get(), opts);

  const std::string name = store_->node_name(0);
  QueryResponse excl = with.Handle(name);
  ASSERT_TRUE(excl.status.ok());
  ASSERT_EQ(excl.neighbors.size(), 3u);
  for (const ScoredNode& n : excl.neighbors) EXPECT_NE(n.node, NodeId{0});

  QueryResponse incl = without.Handle(name);
  ASSERT_TRUE(incl.status.ok());
  ASSERT_EQ(incl.neighbors.size(), 3u);
  EXPECT_EQ(incl.neighbors[0].node, NodeId{0});  // cosine self-match first
}

TEST_F(QueryServerTest, WarmupIsNotRecorded) {
  QueryServer server(store_.get(), {});
  server.Warmup(5);
  EXPECT_EQ(server.latency().count(), 0u);
  EXPECT_EQ(server.qps(), 0.0);
  server.Handle(store_->node_name(1));
  EXPECT_EQ(server.latency().count(), 1u);
  EXPECT_GT(server.qps(), 0.0);
}

TEST_F(QueryServerTest, UnknownNodeIsPerRequestNotFound) {
  QueryServer server(store_.get(), {});
  QueryResponse resp = server.Handle("definitely-missing");
  EXPECT_EQ(resp.status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(resp.neighbors.empty());
  // Failures still count toward the latency histogram.
  EXPECT_EQ(server.latency().count(), 1u);
}

TEST_F(QueryServerTest, QuantizedModeServesTopK) {
  QueryServerOptions opts;
  // Default centroids = sqrt(rows), nprobe derived.
  opts.index_kind = ServeIndexKind::kQuantized;
  opts.k = 5;
  QueryServer server(store_.get(), opts);
  EXPECT_GT(server.index().num_centroids(), 0u);
  EXPECT_GT(server.options().nprobe, 0u);

  QueryResponse resp = server.Handle(store_->node_name(2));
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.neighbors.size(), 5u);
  // Scores come back in the scan's total order.
  for (size_t j = 1; j < resp.neighbors.size(); ++j) {
    EXPECT_GE(resp.neighbors[j - 1].score, resp.neighbors[j].score);
  }
}

TEST_F(QueryServerTest, IndexKindNamesRoundTrip) {
  for (ServeIndexKind kind : {ServeIndexKind::kExact,
                              ServeIndexKind::kQuantized,
                              ServeIndexKind::kHnsw}) {
    ServeIndexKind parsed;
    ASSERT_TRUE(ParseServeIndexKind(ServeIndexKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  ServeIndexKind parsed;
  EXPECT_FALSE(ParseServeIndexKind("flat", &parsed));
}

TEST_F(QueryServerTest, HnswModeServesTopK) {
  // No ANN section in the store (v2 export), so the server builds the
  // graph at construction time and must still answer every query.
  QueryServerOptions opts;
  opts.index_kind = ServeIndexKind::kHnsw;
  opts.k = 5;
  QueryServer server(store_.get(), opts);
  ASSERT_NE(server.ann_index(), nullptr);
  EXPECT_EQ(server.ann_index()->num_rows(), store_->num_nodes());
  EXPECT_EQ(server.options().ef_search, 128u);  // the 0-means-default knob
  // On a tiny store the beam covers everything: the probe must be perfect.
  EXPECT_EQ(server.ann_recall_probe(), 1.0);

  QueryResponse resp = server.Handle(store_->node_name(2));
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.neighbors.size(), 5u);
  for (size_t j = 1; j < resp.neighbors.size(); ++j) {
    EXPECT_GE(resp.neighbors[j - 1].score, resp.neighbors[j].score);
  }

  // Tiny stores are exhaustively covered by the beam, so hnsw and exact
  // must return identical neighbor ids.
  QueryServerOptions exact_opts;
  exact_opts.k = 5;
  QueryServer exact(store_.get(), exact_opts);
  for (NodeId n = 0; n < store_->num_nodes(); ++n) {
    const QueryResponse a = server.Handle(store_->node_name(n));
    const QueryResponse e = exact.Handle(store_->node_name(n));
    ASSERT_EQ(a.neighbors.size(), e.neighbors.size());
    for (size_t j = 0; j < a.neighbors.size(); ++j) {
      EXPECT_EQ(a.neighbors[j].node, e.neighbors[j].node)
          << "query " << n << " rank " << j;
    }
  }
}

TEST_F(QueryServerTest, HnswBorrowsStoredIndexWhenCompatible) {
  // Re-serialize the store with an embedded ANN index over the final
  // embeddings; a server targeting the same matrix and metric must borrow
  // it rather than rebuild (same pointer), and a server targeting a view
  // must fall back to building its own.
  const AnnIndex built =
      AnnIndex::Build(store_->final_embeddings(), KnnMetric::kCosine, {})
          .value();
  const std::string path =
      std::string(::testing::TempDir()) + "/qs_ann_model.bin";
  ServingWriteOptions write_opts;
  write_opts.ann = &built;
  ASSERT_TRUE(WriteServingModel(*store_, path, write_opts).ok());
  auto loaded = EmbeddingStore::Load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_NE(loaded->ann_index(), nullptr);

  QueryServerOptions opts;
  opts.index_kind = ServeIndexKind::kHnsw;
  QueryServer borrowing(&*loaded, opts);
  EXPECT_EQ(borrowing.ann_index(), loaded->ann_index())
      << "compatible stored index must be borrowed, not rebuilt";

  opts.target_view = 0;  // stored index targets final, not view 0
  QueryServer rebuilding(&*loaded, opts);
  ASSERT_NE(rebuilding.ann_index(), nullptr);
  EXPECT_NE(rebuilding.ann_index(), loaded->ann_index());
}

}  // namespace
}  // namespace transn
