#include "walk/random_walk.h"

#include <map>

#include <gtest/gtest.h>
#include "graph/view.h"
#include "test_graphs.h"

namespace transn {
namespace {

ViewGraph PathGraph(const std::vector<double>& weights) {
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  for (size_t i = 0; i < weights.size(); ++i) {
    edges.emplace_back(i, i + 1, weights[i]);
  }
  return ViewGraph::FromEdges(edges);
}

TEST(RandomWalkTest, WalkStepsAlongEdges) {
  HeteroGraph g = Fig2aAcademicNetwork();
  View view = BuildViews(g)[0];  // authorship
  RandomWalker walker(&view.graph, view.is_heter, {.walk_length = 30});
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    auto walk = walker.Walk(0, rng);
    EXPECT_EQ(walk.size(), 30u);
    for (size_t k = 0; k + 1 < walk.size(); ++k) {
      EXPECT_TRUE(view.graph.AreAdjacent(walk[k], walk[k + 1]));
    }
  }
}

TEST(RandomWalkTest, StopsAtIsolatedNode) {
  // A single-edge graph has no isolated nodes, so build a 2-node graph and
  // remove motion by... every node has degree >= 1 in a ViewGraph. Instead
  // verify that a length-1 config returns just the start.
  ViewGraph vg = PathGraph({1.0});
  RandomWalker walker(&vg, false, {.walk_length = 1});
  Rng rng(2);
  EXPECT_EQ(walker.Walk(0, rng).size(), 1u);
}

TEST(RandomWalkTest, WalksPerNodeClampsDegree) {
  HeteroGraph g = TwoCommunityNetwork(30, 3);
  View view = BuildViews(g)[0];
  RandomWalker walker(&view.graph, view.is_heter,
                      {.min_walks_per_node = 4, .max_walks_per_node = 9});
  for (ViewGraph::LocalId n = 0; n < view.graph.num_nodes(); ++n) {
    size_t w = walker.WalksPerNode(n);
    EXPECT_GE(w, 4u);
    EXPECT_LE(w, 9u);
    if (view.graph.degree(n) >= 4 && view.graph.degree(n) <= 9) {
      EXPECT_EQ(w, view.graph.degree(n));
    }
  }
}

TEST(RandomWalkTest, WeightBiasPrefersHeavyEdges) {
  // Star: center 0 with leaves weighted 1 and 9.
  ViewGraph vg = ViewGraph::FromEdges({{0, 1, 1.0}, {0, 2, 9.0}});
  RandomWalker walker(&vg, false,
                      {.walk_length = 2, .weight_biased = true});
  Rng rng(5);
  int heavy = 0;
  const int n = 20000;
  ViewGraph::LocalId center = vg.ToLocal(0);
  ViewGraph::LocalId heavy_leaf = vg.ToLocal(2);
  for (int i = 0; i < n; ++i) {
    heavy += walker.Walk(center, rng)[1] == heavy_leaf;
  }
  EXPECT_NEAR(static_cast<double>(heavy) / n, 0.9, 0.01);
}

TEST(RandomWalkTest, SimpleWalkIgnoresWeights) {
  ViewGraph vg = ViewGraph::FromEdges({{0, 1, 1.0}, {0, 2, 9.0}});
  RandomWalker walker(&vg, false,
                      {.walk_length = 2, .weight_biased = false});
  Rng rng(6);
  int heavy = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    heavy += walker.Walk(vg.ToLocal(0), rng)[1] == vg.ToLocal(2);
  }
  EXPECT_NEAR(static_cast<double>(heavy) / n, 0.5, 0.02);
}

TEST(RandomWalkTest, CorrelatedWalkReproducesFig4Preference) {
  // Figure 4: after stepping R1 -> B2 (weight 2), the correlated walk must
  // shift probability from R2 (rating 5, far from 2) toward R3 (rating 1,
  // close to 2), relative to the pure weight bias π1.
  HeteroGraph g = Fig4BookRatingNetwork();
  View view = BuildViews(g)[0];
  ASSERT_TRUE(view.is_heter);
  const ViewGraph& vg = view.graph;
  const ViewGraph::LocalId r1 = vg.ToLocal(0), r2 = vg.ToLocal(1),
                           r3 = vg.ToLocal(2), b2 = vg.ToLocal(4);

  auto conditional = [&](bool correlated) {
    RandomWalker walker(&vg, true,
                        {.walk_length = 3, .correlated = correlated});
    Rng rng(7);
    std::map<ViewGraph::LocalId, int> counts;
    int total = 0;
    for (int i = 0; i < 120000; ++i) {
      auto walk = walker.Walk(r1, rng);
      if (walk.size() < 3 || walk[1] != b2) continue;
      ++counts[walk[2]];
      ++total;
    }
    std::map<ViewGraph::LocalId, double> p;
    for (auto& [node, c] : counts) p[node] = static_cast<double>(c) / total;
    return p;
  };

  auto with_pi2 = conditional(true);
  auto without_pi2 = conditional(false);

  // π1 only: P(R2) = 5/8, P(R3) = 1/8. With π2 (Δ=4, w_prev=2):
  // scores 2*1, 5*0.25, 1*1.25 -> P(R2) = 1.25/4.5 ≈ 0.278,
  // P(R3) = 1.25/4.5 ≈ 0.278.
  EXPECT_NEAR(without_pi2[r2], 5.0 / 8.0, 0.02);
  EXPECT_NEAR(without_pi2[r3], 1.0 / 8.0, 0.02);
  EXPECT_NEAR(with_pi2[r2], 1.25 / 4.5, 0.02);
  EXPECT_NEAR(with_pi2[r3], 1.25 / 4.5, 0.02);
  EXPECT_LT(with_pi2[r2], without_pi2[r2]);
  EXPECT_GT(with_pi2[r3], without_pi2[r3]);
}

TEST(RandomWalkTest, Pi2InactiveOnHomoViews) {
  // A homo-view with the same weights must follow π1 regardless of history.
  ViewGraph vg = ViewGraph::FromEdges(
      {{0, 1, 2.0}, {1, 2, 5.0}, {1, 3, 1.0}});
  RandomWalker walker(&vg, /*is_heter=*/false,
                      {.walk_length = 3, .correlated = true});
  Rng rng(8);
  int to2 = 0, total = 0;
  for (int i = 0; i < 50000; ++i) {
    auto walk = walker.Walk(vg.ToLocal(0), rng);
    if (walk.size() < 3) continue;
    // From node 1 (weights: back 2, to n2 5, to n3 1).
    to2 += walk[2] == vg.ToLocal(2);
    ++total;
  }
  EXPECT_NEAR(static_cast<double>(to2) / total, 5.0 / 8.0, 0.02);
}

TEST(RandomWalkTest, CorpusDegreeBiasedStartCounts) {
  HeteroGraph g = Fig2aAcademicNetwork();
  View view = BuildViews(g)[0];
  RandomWalker walker(&view.graph, view.is_heter,
                      {.walk_length = 5,
                       .min_walks_per_node = 2,
                       .max_walks_per_node = 3});
  Rng rng(9);
  auto corpus = walker.SampleCorpus(rng);
  size_t expected = 0;
  for (ViewGraph::LocalId n = 0; n < view.graph.num_nodes(); ++n) {
    expected += walker.WalksPerNode(n);
  }
  EXPECT_EQ(corpus.size(), expected);
}

TEST(RandomWalkTest, UniformStartsKeepTotalCount) {
  HeteroGraph g = Fig2aAcademicNetwork();
  View view = BuildViews(g)[0];
  WalkConfig degree_cfg{.walk_length = 5,
                        .min_walks_per_node = 2,
                        .max_walks_per_node = 3};
  WalkConfig uniform_cfg = degree_cfg;
  uniform_cfg.degree_biased_starts = false;
  RandomWalker degree_walker(&view.graph, view.is_heter, degree_cfg);
  RandomWalker uniform_walker(&view.graph, view.is_heter, uniform_cfg);
  Rng rng(10);
  EXPECT_EQ(uniform_walker.SampleCorpus(rng).size(),
            degree_walker.SampleCorpus(rng).size());
}

}  // namespace
}  // namespace transn
