// io.* failpoints in the serving-load path: an EmbeddingStore::Load failure
// injected mid-reload (TRANSN_FAULTS-style arming) must leave the previous
// model serving — no partial swap, no generation bump — and the very next
// un-faulted reload must succeed. Mirrors writer_faults_test for the read
// side.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "core/model_io.h"
#include "core/transn.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/serve_app.h"
#include "serve/embedding_store.h"
#include "serve/model_manager.h"
#include "serve_test_util.h"
#include "test_graphs.h"
#include "util/fault.h"

namespace transn {
namespace {

class ReloadFaultsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_path_ = new std::string(std::string(::testing::TempDir()) +
                                  "/reload_faults_model.bin");
    HeteroGraph graph = TwoCommunityNetwork(12, 4);
    TransNModel model(&graph, SmallServeConfig());
    model.Fit();
    ASSERT_TRUE(ExportServingModel(model, *model_path_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(model_path_->c_str());
    delete model_path_;
  }
  void TearDown() override { fault::FaultInjector::Default().DisarmAll(); }

  static std::string* model_path_;
};

std::string* ReloadFaultsTest::model_path_ = nullptr;

TEST_F(ReloadFaultsTest, LoadFailsCleanlyUnderIoReadFault) {
  fault::FaultInjector::Default().Arm(fault::kIoRead,
                                      fault::FaultSpec::Always());
  auto store = EmbeddingStore::Load(*model_path_);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIoError)
      << store.status().ToString();

  fault::FaultInjector::Default().DisarmAll();
  EXPECT_TRUE(EmbeddingStore::Load(*model_path_).ok());
}

TEST_F(ReloadFaultsTest, FaultedReloadLeavesOldModelServing) {
  ModelManager manager(QueryServerOptions{});
  ASSERT_TRUE(manager.Reload(*model_path_).ok());
  auto before = manager.Current();
  const std::string node = before->store.node_name(0);

  fault::FaultInjector::Default().Arm(fault::kIoRead,
                                      fault::FaultSpec::Always());
  Status s = manager.Reload(*model_path_);
  fault::FaultInjector::Default().DisarmAll();
  EXPECT_FALSE(s.ok()) << "reload succeeded under io.read fault";
  EXPECT_EQ(s.code(), StatusCode::kIoError) << s.ToString();

  // No partial swap: the exact generation-1 object is still current and
  // still answers queries.
  auto after = manager.Current();
  EXPECT_EQ(after.get(), before.get());
  EXPECT_EQ(manager.generation(), 1u);
  QueryResponse r = after->server->Handle(node, /*record=*/false);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();

  // The next clean reload goes through.
  EXPECT_TRUE(manager.Reload(*model_path_).ok());
  EXPECT_EQ(manager.generation(), 2u);
}

TEST_F(ReloadFaultsTest, TransientFaultOnlyFailsOneReload) {
  ModelManager manager(QueryServerOptions{});
  ASSERT_TRUE(manager.Reload(*model_path_).ok());
  // One transient read failure (a torn file mid-publish): the next hit
  // succeeds without re-arming.
  fault::FaultInjector::Default().Arm(fault::kIoRead,
                                      fault::FaultSpec::OnceAfterN(0));
  EXPECT_FALSE(manager.Reload(*model_path_).ok());
  EXPECT_TRUE(manager.Reload(*model_path_).ok());
  EXPECT_EQ(manager.generation(), 2u);
}

TEST_F(ReloadFaultsTest, HttpReloadFailureKeepsTrafficFlowing) {
  net::ServeAppOptions app_opts;
  app_opts.model_path = *model_path_;
  net::ServeApp app(app_opts);
  ASSERT_TRUE(app.Start().ok());
  net::HttpServer server(
      {}, [&app](net::HttpRequest&& req, net::ResponseHandle handle) {
        app.HandleRequest(std::move(req), std::move(handle));
      });
  ASSERT_TRUE(server.Start().ok());
  auto snapshot = app.manager().Current();
  const std::string node = snapshot->store.node_name(0);

  net::HttpClient client("127.0.0.1", server.port());
  fault::FaultInjector::Default().Arm(fault::kIoRead,
                                      fault::FaultSpec::Always());
  auto reload = client.Post("/admin/reload", "");
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  EXPECT_EQ(reload->code, 500) << reload->body;
  // The old model keeps answering over HTTP after the failed swap.
  auto query = client.Get("/v1/knn?node=" + node);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->code, 200) << query->body;
  fault::FaultInjector::Default().DisarmAll();

  EXPECT_EQ(client.Post("/admin/reload", "")->code, 200);
  server.Stop();
  app.Stop();
}

}  // namespace
}  // namespace transn
