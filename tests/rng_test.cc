#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace transn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BoundedUniformHitsAllValues) {
  Rng rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.NextUint64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double mean = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    mean += v;
  }
  mean /= 10000;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(21);
  double mean = 0.0, var = 0.0;
  const int n = 20000;
  std::vector<double> xs(n);
  for (int i = 0; i < n; ++i) {
    xs[i] = rng.NextGaussian();
    mean += xs[i];
  }
  mean /= n;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(31);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.NextDiscrete(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.35);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyMoves) {
  Rng rng(5);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += v[i] != i;
  EXPECT_GT(moved, 50);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.NextUint64() == child.NextUint64();
  EXPECT_LT(same, 2);
}

TEST(RngDeathTest, ZeroBoundAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.NextUint64(0), "Check failed");
}

}  // namespace
}  // namespace transn
