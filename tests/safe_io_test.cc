#include "util/safe_io.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>
#include "util/fault.h"

namespace transn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool Exists(const std::string& path) {
  return std::ifstream(path).good();
}

class SafeIoTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultInjector::Default().DisarmAll(); }
};

TEST_F(SafeIoTest, Crc32MatchesCheckValue) {
  // The ISO-HDLC check value: CRC-32("123456789") == 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a"), Crc32("a"));
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST_F(SafeIoTest, Crc32Chains) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split : {0ul, 1ul, 10ul, data.size()}) {
    EXPECT_EQ(Crc32(data.substr(split), Crc32(data.substr(0, split))),
              Crc32(data))
        << "split " << split;
  }
}

TEST_F(SafeIoTest, CheckedWriterWritesAllBytes) {
  std::string path = TempPath("checked.bin");
  CheckedWriter w(path);
  ASSERT_TRUE(w.status().ok()) << w.status().ToString();
  w.Write("hello ").Write("world");
  // Something bigger than the internal buffer, to force mid-stream flushes.
  std::string big(1 << 20, 'x');
  w.Write(big);
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(Slurp(path), "hello world" + big);
  EXPECT_TRUE(w.Close().ok());  // idempotent
  std::remove(path.c_str());
}

TEST_F(SafeIoTest, CheckedWriterUnwritablePathFails) {
  CheckedWriter w("/no/such/dir/file.bin");
  EXPECT_FALSE(w.status().ok());
  w.Write("ignored");  // writes after failure are no-ops, not crashes
  EXPECT_FALSE(w.Close().ok());
}

TEST_F(SafeIoTest, AtomicFileWriterCommitReplacesTarget) {
  std::string path = TempPath("atomic.bin");
  { std::ofstream(path) << "old contents"; }
  AtomicFileWriter w(path);
  w.Write("new contents");
  EXPECT_EQ(Slurp(path), "old contents");  // invisible until Commit
  ASSERT_TRUE(w.Commit().ok());
  EXPECT_EQ(Slurp(path), "new contents");
  EXPECT_FALSE(Exists(w.tmp_path()));
  std::remove(path.c_str());
}

TEST_F(SafeIoTest, AtomicFileWriterAbandonLeavesTargetUntouched) {
  std::string path = TempPath("abandoned.bin");
  { std::ofstream(path) << "precious"; }
  {
    AtomicFileWriter w(path);
    w.Write("half-baked");
    w.Abandon();
    EXPECT_FALSE(Exists(w.tmp_path()));
  }
  {
    // Destruction without Commit abandons too.
    AtomicFileWriter w(path);
    w.Write("also half-baked");
  }
  EXPECT_EQ(Slurp(path), "precious");
  EXPECT_FALSE(Exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(SafeIoTest, InjectedWriteFailureLeavesTargetAndCounts) {
  std::string path = TempPath("enospc.bin");
  { std::ofstream(path) << "survivor"; }
  const uint64_t errors_before = WriteErrorCount();
  fault::FaultInjector::Default().Arm(fault::kIoWrite, fault::FaultSpec::Always());
  AtomicFileWriter w(path);
  w.Write("doomed");
  EXPECT_FALSE(w.Commit().ok());
  EXPECT_EQ(w.status().code(), StatusCode::kIoError);
  fault::FaultInjector::Default().DisarmAll();
  EXPECT_EQ(Slurp(path), "survivor");
  EXPECT_FALSE(Exists(path + ".tmp"));  // failed commit cleans its temp
  EXPECT_GT(WriteErrorCount(), errors_before);
  std::remove(path.c_str());
}

TEST_F(SafeIoTest, InjectedShortWriteFails) {
  std::string path = TempPath("short.bin");
  fault::FaultInjector::Default().Arm(fault::kIoShortWrite,
                                      fault::FaultSpec::Always());
  CheckedWriter w(path);
  w.Write(std::string(4096, 'y'));
  EXPECT_FALSE(w.Close().ok());
  fault::FaultInjector::Default().DisarmAll();
  std::remove(path.c_str());
}

TEST_F(SafeIoTest, InjectedFsyncFailureFailsCommit) {
  std::string path = TempPath("fsync.bin");
  fault::FaultInjector::Default().Arm(fault::kIoFsync,
                                      fault::FaultSpec::Always());
  AtomicFileWriter w(path);
  w.Write("unsynced");
  EXPECT_FALSE(w.Commit().ok());
  fault::FaultInjector::Default().DisarmAll();
  EXPECT_FALSE(Exists(path));
  std::remove(path.c_str());
}

TEST_F(SafeIoTest, TornRenameLeavesTmpAndNextWriterRecovers) {
  std::string path = TempPath("torn.bin");
  { std::ofstream(path) << "old"; }
  fault::FaultInjector::Default().Arm(fault::kIoRename,
                                      fault::FaultSpec::OnceAfterN(0));
  std::string tmp;
  {
    AtomicFileWriter w(path);
    tmp = w.tmp_path();
    w.Write("torn");
    EXPECT_FALSE(w.Commit().ok());
  }
  fault::FaultInjector::Default().DisarmAll();
  // The crash analogue: target untouched, torn temp left behind...
  EXPECT_EQ(Slurp(path), "old");
  EXPECT_TRUE(Exists(tmp));
  // ...and the next writer truncates it and completes normally.
  AtomicFileWriter retry(path);
  retry.Write("recovered");
  ASSERT_TRUE(retry.Commit().ok());
  EXPECT_EQ(Slurp(path), "recovered");
  EXPECT_FALSE(Exists(tmp));
  std::remove(path.c_str());
}

TEST_F(SafeIoTest, WriteErrorHookObservesFailures) {
  int calls = 0;
  SetWriteErrorHook([&calls] { ++calls; });
  fault::FaultInjector::Default().Arm(fault::kIoWrite,
                                      fault::FaultSpec::Always());
  CheckedWriter w(TempPath("hooked.bin"));
  w.Write("x");
  w.Close();
  fault::FaultInjector::Default().DisarmAll();
  SetWriteErrorHook(nullptr);
  EXPECT_EQ(calls, 1);  // the first failure latches; no double counting
}

}  // namespace
}  // namespace transn
