// Tests for the serving resilience layer: per-request deadlines (header +
// server default), the graded-degradation controller, adaptive Retry-After,
// and degraded-/healthz reporting across failed reloads. The load-bearing
// pin: a request that arrives already expired is shed with 503 at admission
// and NEVER reaches QueryServer::HandleBatch (serve.requests_total must not
// move), and with the machinery disabled/idle the response bytes are
// identical to a build without it.

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "core/model_io.h"
#include "core/transn.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/serve_app.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/embedding_store.h"
#include "serve/query_server.h"
#include "serve_test_util.h"
#include "test_graphs.h"

namespace transn {
namespace net {
namespace {

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Default().GetCounter(name)->Value();
}

// --- pure units ------------------------------------------------------------

TEST(RetryAfterTest, DrainRateDrivesTheHintWithinClamps) {
  // No queue or no drain history: the cheap safe answer.
  EXPECT_EQ(ComputeRetryAfterSeconds(0, 500.0), 1);
  EXPECT_EQ(ComputeRetryAfterSeconds(100, 0.0), 1);
  EXPECT_EQ(ComputeRetryAfterSeconds(100, -1.0), 1);
  // ceil(depth / rate), clamped to [1, 30].
  EXPECT_EQ(ComputeRetryAfterSeconds(100, 50.0), 2);
  EXPECT_EQ(ComputeRetryAfterSeconds(101, 50.0), 3);
  EXPECT_EQ(ComputeRetryAfterSeconds(10, 1000.0), 1);
  EXPECT_EQ(ComputeRetryAfterSeconds(1'000'000, 10.0), 30);
}

TEST(DegradationControllerTest, PressureEngagesTier1AndCalmReleasesIt) {
  DegradationController::Options opts;
  opts.calm_steps = 3;
  DegradationController c(opts);
  EXPECT_EQ(c.tier(), 0);

  // Queue above the pressure ratio: reduced beam.
  c.Observe(/*queue_depth=*/600, /*max_queue=*/1024, /*shed=*/0,
            /*recall_probe=*/1.0);
  EXPECT_EQ(c.tier(), 1);

  // Hysteresis: calm observations only release the tier after calm_steps.
  c.Observe(0, 1024, 0, 1.0);
  c.Observe(0, 1024, 0, 1.0);
  EXPECT_EQ(c.tier(), 1);
  c.Observe(0, 1024, 0, 1.0);
  EXPECT_EQ(c.tier(), 0);

  // Sheds since the last batch count as pressure even with an empty queue.
  c.Observe(0, 1024, /*shed=*/5, 1.0);
  EXPECT_EQ(c.tier(), 1);
  // A pressured observation mid-descent resets the calm streak.
  c.Observe(0, 1024, 0, 1.0);
  c.Observe(900, 1024, 0, 1.0);
  c.Observe(0, 1024, 0, 1.0);
  c.Observe(0, 1024, 0, 1.0);
  EXPECT_EQ(c.tier(), 1);
  c.Observe(0, 1024, 0, 1.0);
  EXPECT_EQ(c.tier(), 0);
}

TEST(DegradationControllerTest, RecallCollapseForcesExactTier) {
  DegradationController::Options opts;
  opts.calm_steps = 2;
  DegradationController c(opts);

  c.Observe(0, 1024, 0, /*recall_probe=*/0.2);
  EXPECT_EQ(c.tier(), 2);
  // Pressure cannot make it worse, and calm cannot release tier 2 while
  // the probe stays bad.
  c.Observe(1024, 1024, 10, 0.1);
  EXPECT_EQ(c.tier(), 2);
  c.Observe(0, 1024, 0, 0.1);
  EXPECT_EQ(c.tier(), 2);

  // Probe recovery steps down to tier 1 first; hysteresis finishes.
  c.Observe(0, 1024, 0, 0.9);
  EXPECT_EQ(c.tier(), 1);
  c.Observe(0, 1024, 0, 0.9);
  c.Observe(0, 1024, 0, 0.9);
  EXPECT_EQ(c.tier(), 0);
}

TEST(DegradationControllerTest, DisabledControllerPinsTier0) {
  DegradationController::Options opts;
  opts.enabled = false;
  DegradationController c(opts);
  c.Observe(1024, 1024, 100, 0.0);
  EXPECT_EQ(c.tier(), 0);
}

// --- full stack over a real model ------------------------------------------

class ServeResilienceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_path_ = new std::string(std::string(::testing::TempDir()) +
                                  "/serve_resilience_model.bin");
    HeteroGraph graph = TwoCommunityNetwork(12, 4);
    TransNModel model(&graph, SmallServeConfig());
    model.Fit();
    ASSERT_TRUE(ExportServingModel(model, *model_path_).ok());
    auto store = EmbeddingStore::Load(*model_path_);
    ASSERT_TRUE(store.ok());
    node_names_ = new std::vector<std::string>();
    for (NodeId n = 0; n < store->num_nodes(); ++n) {
      node_names_->push_back(store->node_name(n));
    }
  }
  static void TearDownTestSuite() {
    std::remove(model_path_->c_str());
    delete model_path_;
    delete node_names_;
  }

  void StartServing(int default_deadline_ms = 0, bool degradation = true) {
    ServeAppOptions app_opts;
    app_opts.model_path = *model_path_;
    app_opts.query.k = 3;
    app_opts.default_deadline_ms = default_deadline_ms;
    app_opts.enable_degradation = degradation;
    app_ = std::make_unique<ServeApp>(app_opts);
    ASSERT_TRUE(app_->Start().ok());
    server_ = std::make_unique<HttpServer>(
        HttpServerOptions{},
        [this](HttpRequest&& req, ResponseHandle handle) {
          app_->HandleRequest(std::move(req), std::move(handle));
        });
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (app_ != nullptr) app_->Stop();
  }

  static std::string* model_path_;
  static std::vector<std::string>* node_names_;
  std::unique_ptr<ServeApp> app_;
  std::unique_ptr<HttpServer> server_;
};

std::string* ServeResilienceTest::model_path_ = nullptr;
std::vector<std::string>* ServeResilienceTest::node_names_ = nullptr;

TEST_F(ServeResilienceTest, ExpiredDeadlineNeverReachesTheExecutor) {
  StartServing();
  HttpClient client("127.0.0.1", server_->port());

  // Warm request so the executor and counters are live.
  auto warm = client.Get("/v1/knn?node=" + node_names_->front());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(warm->code, 200);

  const uint64_t handled_before = CounterValue(obs::kServeRequestsTotal);
  const uint64_t expired_before =
      CounterValue(obs::kServeDeadlineExpiredTotal);

  // Deadline 0 = already expired: shed at admission with 503, before the
  // request can occupy the batch executor or touch QueryServer.
  auto r = client.Get("/v1/knn?node=" + node_names_->front(),
                      "X-Transn-Deadline-Ms: 0\r\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->code, 503);
  EXPECT_NE(r->body.find("deadline-exceeded"), std::string::npos) << r->body;

  EXPECT_EQ(CounterValue(obs::kServeRequestsTotal), handled_before)
      << "an expired request reached QueryServer::HandleBatch";
  EXPECT_EQ(CounterValue(obs::kServeDeadlineExpiredTotal),
            expired_before + 1);
}

TEST_F(ServeResilienceTest, InvalidDeadlineHeaderIsRejectedWith400) {
  StartServing();
  HttpClient client("127.0.0.1", server_->port());
  const std::string path = "/v1/knn?node=" + node_names_->front();
  EXPECT_EQ(client.Get(path, "X-Transn-Deadline-Ms: banana\r\n")->code, 400);
  EXPECT_EQ(client.Get(path, "X-Transn-Deadline-Ms: -5\r\n")->code, 400);
}

TEST_F(ServeResilienceTest, GenerousDeadlineLeavesResponsesByteIdentical) {
  // The whole deadline/degradation layer must be invisible on the default
  // path: same node, with and without a comfortable deadline, yields the
  // same bytes. Degradation is disabled to pin tier 0 explicitly.
  StartServing(/*default_deadline_ms=*/0, /*degradation=*/false);
  HttpClient client("127.0.0.1", server_->port());
  const std::string path = "/v1/knn?node=" + node_names_->front();

  auto plain = client.Get(path);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_EQ(plain->code, 200);
  auto with_deadline = client.Get(path, "X-Transn-Deadline-Ms: 60000\r\n");
  ASSERT_TRUE(with_deadline.ok()) << with_deadline.status().ToString();
  ASSERT_EQ(with_deadline->code, 200);
  EXPECT_EQ(plain->body, with_deadline->body);
}

TEST_F(ServeResilienceTest, ServerDefaultDeadlineAppliesAndHeaderOverrides) {
  StartServing(/*default_deadline_ms=*/60'000);
  HttpClient client("127.0.0.1", server_->port());
  const std::string path = "/v1/knn?node=" + node_names_->front();

  // A comfortable server default never fires on a healthy server.
  auto ok = client.Get(path);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->code, 200);

  // The per-request header takes precedence over the default.
  auto shed = client.Get(path, "X-Transn-Deadline-Ms: 0\r\n");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->code, 503);
}

TEST_F(ServeResilienceTest, FailedReloadDegradesHealthzUntilRecovery) {
  StartServing();
  HttpClient client("127.0.0.1", server_->port());

  auto bad = client.Post("/admin/reload?path=/nonexistent/resilience.bin",
                         "");
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_GE(bad->code, 500) << bad->body;

  // The old generation keeps serving, but /healthz flags the staleness —
  // still HTTP 200 so orchestrators do not flap the instance.
  auto h = client.Get("/healthz");
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h->code, 200);
  EXPECT_NE(h->body.find("\"status\":\"degraded\""), std::string::npos)
      << h->body;
  EXPECT_NE(h->body.find("\"reload_failures\":1"), std::string::npos)
      << h->body;
  EXPECT_NE(h->body.find("\"staleness_seconds\":"), std::string::npos)
      << h->body;
  auto q = client.Get("/v1/knn?node=" + node_names_->front());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->code, 200) << "old generation must keep serving";

  // A successful reload clears the degraded flag.
  auto good = client.Post("/admin/reload", "");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_EQ(good->code, 200) << good->body;
  auto h2 = client.Get("/healthz");
  ASSERT_TRUE(h2.ok());
  EXPECT_NE(h2->body.find("\"status\":\"ok\""), std::string::npos)
      << h2->body;
  EXPECT_NE(h2->body.find("\"reload_failures\":0"), std::string::npos)
      << h2->body;
}

TEST_F(ServeResilienceTest, BatchControlChecksDeadlinesAndForcesExact) {
  auto store = EmbeddingStore::Load(*model_path_);
  ASSERT_TRUE(store.ok());
  QueryServerOptions opts;
  opts.k = 3;
  QueryServer qs(&store.value(), opts);
  const std::vector<std::string> names = {node_names_->front(),
                                          node_names_->back()};

  // An expired control fails every request without running a scan.
  BatchControl expired;
  expired.has_deadline = true;
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  std::vector<QueryResponse> out = qs.HandleBatch(names, expired);
  ASSERT_EQ(out.size(), names.size());
  for (const QueryResponse& r : out) {
    EXPECT_FALSE(r.status.ok());
    EXPECT_NE(r.status.message().find("deadline-exceeded"),
              std::string::npos);
    EXPECT_TRUE(r.neighbors.empty());
  }

  // The default control is a no-op: identical to the legacy overload.
  std::vector<QueryResponse> plain = qs.HandleBatch(names);
  std::vector<QueryResponse> noop = qs.HandleBatch(names, BatchControl{});
  ASSERT_EQ(plain.size(), noop.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    ASSERT_TRUE(plain[i].status.ok());
    ASSERT_TRUE(noop[i].status.ok());
    ASSERT_EQ(plain[i].neighbors.size(), noop[i].neighbors.size());
    for (size_t j = 0; j < plain[i].neighbors.size(); ++j) {
      EXPECT_EQ(plain[i].neighbors[j].node, noop[i].neighbors[j].node);
      EXPECT_EQ(plain[i].neighbors[j].score, noop[i].neighbors[j].score);
    }
  }

  // force_exact answers from the ground-truth scan: still k results, OK.
  BatchControl exact;
  exact.force_exact = true;
  std::vector<QueryResponse> exact_out = qs.HandleBatch(names, exact);
  ASSERT_EQ(exact_out.size(), names.size());
  for (const QueryResponse& r : exact_out) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.neighbors.size(), opts.k);
  }
}

}  // namespace
}  // namespace net
}  // namespace transn
