#ifndef TRANSN_TESTS_SERVE_TEST_UTIL_H_
#define TRANSN_TESTS_SERVE_TEST_UTIL_H_

#include <cstdio>
#include <string>

#include <gtest/gtest.h>
#include "core/model_io.h"
#include "core/transn.h"
#include "serve/embedding_store.h"

namespace transn {

/// Small, fast TransN config shared by the serving tests: enough structure
/// for views, translators, and embeddings to exist without slow training.
inline TransNConfig SmallServeConfig() {
  TransNConfig cfg;
  cfg.dim = 12;
  cfg.iterations = 1;
  cfg.walk.walk_length = 10;
  cfg.walk.min_walks_per_node = 2;
  cfg.walk.max_walks_per_node = 3;
  cfg.translator_encoders = 2;
  cfg.translator_seq_len = 4;
  cfg.cross_paths_per_pair = 10;
  cfg.seed = 5;
  return cfg;
}

/// Exports `model` to a temp file and loads it back as an EmbeddingStore.
/// The file is removed before returning.
inline EmbeddingStore ExportAndLoad(const TransNModel& model,
                                    const char* filename) {
  std::string path = std::string(::testing::TempDir()) + "/" + filename;
  Status s = ExportServingModel(model, path);
  EXPECT_TRUE(s.ok()) << s.ToString();
  auto store = EmbeddingStore::Load(path);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  std::remove(path.c_str());
  return std::move(store).value();
}

}  // namespace transn

#endif  // TRANSN_TESTS_SERVE_TEST_UTIL_H_
