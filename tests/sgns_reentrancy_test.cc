// Regression tests for the reentrancy of the pair trainers: TrainPair must
// hold no mutable trainer state, so that concurrent Hogwild workers can
// share one trainer. The concurrent tests are the TSan targets — before the
// per-call-scratch fix, a shared center_grad_ member made concurrent calls
// corrupt gradients (and race under TSan) even on disjoint rows.

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "emb/hierarchical_softmax.h"
#include "emb/negative_sampler.h"
#include "emb/sgns.h"

namespace transn {
namespace {

constexpr size_t kVocab = 64;
constexpr size_t kDim = 24;
constexpr int kThreads = 4;
constexpr int kPairsPerThread = 2000;

void ExpectAllFinite(const EmbeddingTable& table) {
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.dim(); ++c) {
      ASSERT_TRUE(std::isfinite(table.Row(r)[c]))
          << "row " << r << " col " << c;
    }
  }
}

TEST(SgnsReentrancyTest, ConcurrentTrainPairOnSharedTrainer) {
  Rng init(3);
  EmbeddingTable input(kVocab, kDim, init);
  EmbeddingTable context(kVocab, kDim);
  std::vector<double> counts(kVocab, 1.0);
  NegativeSampler sampler(counts);
  SgnsTrainer trainer(&input, &context, &sampler,
                      {.negatives = 3, .learning_rate = 0.025});

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trainer, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kPairsPerThread; ++i) {
        const uint32_t center = static_cast<uint32_t>(rng.NextUint64(kVocab));
        const uint32_t ctx = static_cast<uint32_t>(rng.NextUint64(kVocab));
        const double loss = trainer.TrainPair(center, ctx, rng);
        ASSERT_TRUE(std::isfinite(loss));
      }
    });
  }
  for (std::thread& t : workers) t.join();
  ExpectAllFinite(input);
  ExpectAllFinite(context);
}

TEST(SgnsReentrancyTest, SequentialResultsAreDeterministic) {
  // Two trainers over identical tables and RNG streams must produce
  // byte-identical tables — the per-call scratch must not perturb the
  // sequential math.
  auto run = [] {
    Rng init(5);
    auto input = std::make_unique<EmbeddingTable>(kVocab, kDim, init);
    auto context = std::make_unique<EmbeddingTable>(kVocab, kDim);
    std::vector<double> counts(kVocab, 1.0);
    NegativeSampler sampler(counts);
    SgnsTrainer trainer(input.get(), context.get(), &sampler,
                        {.negatives = 5, .learning_rate = 0.05});
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
      const uint32_t center = static_cast<uint32_t>(rng.NextUint64(kVocab));
      const uint32_t ctx = static_cast<uint32_t>(rng.NextUint64(kVocab));
      trainer.TrainPair(center, ctx, rng);
    }
    return input;
  };
  auto a = run();
  auto b = run();
  for (size_t r = 0; r < kVocab; ++r) {
    for (size_t c = 0; c < kDim; ++c) {
      ASSERT_EQ(a->Row(r)[c], b->Row(r)[c]) << "row " << r << " col " << c;
    }
  }
}

TEST(SgnsReentrancyTest, LargeDimHeapScratchPath) {
  // Dims above SgnsTrainer::kMaxStackDim take the heap-scratch branch.
  const size_t dim = SgnsTrainer::kMaxStackDim + 16;
  Rng init(7);
  EmbeddingTable input(8, dim, init);
  EmbeddingTable context(8, dim);
  std::vector<double> counts(8, 1.0);
  NegativeSampler sampler(counts);
  SgnsTrainer trainer(&input, &context, &sampler,
                      {.negatives = 2, .learning_rate = 0.05});
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(std::isfinite(trainer.TrainPair(i % 8, (i + 3) % 8, rng)));
  }
  ExpectAllFinite(input);
}

TEST(HierarchicalSoftmaxReentrancyTest, ConcurrentTrainPairOnSharedTrainer) {
  Rng init(11);
  EmbeddingTable input(kVocab, kDim, init);
  std::vector<double> counts(kVocab);
  for (size_t i = 0; i < kVocab; ++i) counts[i] = 1.0 + (i % 7);
  HierarchicalSoftmaxTrainer trainer(&input, counts, 0.025);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trainer, t] {
      Rng rng(200 + t);
      for (int i = 0; i < kPairsPerThread; ++i) {
        const uint32_t center = static_cast<uint32_t>(rng.NextUint64(kVocab));
        const uint32_t ctx = static_cast<uint32_t>(rng.NextUint64(kVocab));
        ASSERT_TRUE(std::isfinite(trainer.TrainPair(center, ctx)));
      }
    });
  }
  for (std::thread& t : workers) t.join();
  ExpectAllFinite(input);
}

}  // namespace
}  // namespace transn
