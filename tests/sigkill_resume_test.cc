// Crash-safety end-to-end against a REAL process kill: forks transn_cli
// with --checkpoint-every 1, SIGKILLs it at randomized points mid-training,
// resumes with --resume from the surviving checkpoint, and asserts the
// final embeddings are bit-for-bit identical to a never-interrupted run.
// Unlike crash_safety_test (which aborts in-process through the train.abort
// failpoint), this covers the actual kernel-level kill path: no destructors,
// no atexit, no stream flushing — whatever is on disk is all that survives.
// Runs at --threads 2 so the checkpointed RNG state also proves the episodic
// block engine resumes deterministically.
//
// The CLI binary location comes from the TRANSN_CLI_PATH compile definition
// (set in tests/CMakeLists.txt from $<TARGET_FILE:transn_cli>).

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "core/model_io.h"
#include "core/transn.h"
#include "data/hsbm.h"
#include "graph/graph_io.h"
#include "util/rng.h"

namespace transn {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct ChildResult {
  bool exited = false;     // normal exit (vs signal)
  int exit_code = -1;      // valid when exited
  bool killed = false;     // we SIGKILLed it while it was still running
  double seconds = 0.0;    // child wall time observed by the parent
};

/// Forks and execs the CLI with `args` (argv[1..]), output to /dev/null.
/// With kill_after_ms >= 0, SIGKILLs the child once that delay elapses (if
/// it is still running). Always reaps the child.
ChildResult RunCli(const std::vector<std::string>& args, int kill_after_ms) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::dup2(devnull, STDERR_FILENO);
      ::close(devnull);
    }
    std::vector<std::string> argv_strings;
    argv_strings.push_back(TRANSN_CLI_PATH);
    for (const std::string& a : args) argv_strings.push_back(a);
    std::vector<char*> argv;
    for (std::string& s : argv_strings) argv.push_back(s.data());
    argv.push_back(nullptr);
    ::execv(TRANSN_CLI_PATH, argv.data());
    ::_exit(127);  // execv failed
  }
  ChildResult result;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  int status = 0;
  if (kill_after_ms >= 0) {
    // Poll so a fast child is reaped promptly; kill once the delay passes.
    for (;;) {
      const pid_t done = ::waitpid(pid, &status, WNOHANG);
      if (done == pid) break;
      if (elapsed_ms() >= kill_after_ms) {
        ::kill(pid, SIGKILL);
        result.killed = true;
        ::waitpid(pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  } else {
    ::waitpid(pid, &status, 0);
  }
  result.seconds = static_cast<double>(elapsed_ms()) / 1000.0;
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
  }
  return result;
}

// Sized so the reference run takes long enough (hundreds of ms) that the
// randomized kill points land in different iterations, not in startup.
constexpr size_t kIterations = 8;

/// Train flags shared by every run; checkpoint/out paths vary per trial.
std::vector<std::string> TrainArgs(const std::string& graph,
                                   const std::string& out,
                                   const std::string& ckpt) {
  return {"train",          "--graph",          graph,
          "--out",           out,               "--dim",
          "16",              "--iterations",    std::to_string(kIterations),
          "--seed",          "99",              "--threads",
          "2",               "--walk-length",   "8",
          "--min-walks",     "1",               "--max-walks",
          "2",               "--encoders",      "2",
          "--seq-len",       "3",               "--cross-paths",
          "6",               "--checkpoint-every", "1",
          "--save-checkpoint", ckpt};
}

/// The TransNConfig equivalent of TrainArgs, for in-process checkpoint
/// validation (shapes must match for ResumeTransNCheckpoint to accept).
TransNConfig TrainConfig() {
  TransNConfig cfg;
  cfg.dim = 16;
  cfg.iterations = kIterations;
  cfg.seed = 99;
  cfg.num_threads = 2;
  cfg.walk.walk_length = 8;
  cfg.walk.min_walks_per_node = 1;
  cfg.walk.max_walks_per_node = 2;
  cfg.translator_encoders = 2;
  cfg.translator_seq_len = 3;
  cfg.cross_paths_per_pair = 6;
  return cfg;
}

TEST(SigkillResumeTest, KilledMidEpochResumesBitIdentical) {
  // Small two-type HSBM graph, written to disk for the CLI.
  HsbmSpec spec;
  spec.node_types = {{"User", 300}, {"Item", 200}};
  spec.edge_types = {
      {.name = "UU", .type_a = 0, .type_b = 0, .num_edges = 1200},
      {.name = "UI",
       .type_a = 0,
       .type_b = 1,
       .num_edges = 1200,
       .weighted = true},
  };
  spec.num_communities = 3;
  spec.labeled_type = 0;
  spec.seed = 41;
  const HeteroGraph g = GenerateHsbm(spec);
  const std::string graph_path = TempPath("sigkill_graph.tsv");
  ASSERT_TRUE(SaveGraph(g, graph_path).ok());

  // Uninterrupted reference run (via the same CLI, so the comparison is
  // byte-for-byte on the same output format).
  const std::string ref_out = TempPath("sigkill_ref.tsv");
  const std::string ref_ckpt = TempPath("sigkill_ref.ckpt");
  const ChildResult ref = RunCli(TrainArgs(graph_path, ref_out, ref_ckpt),
                                 /*kill_after_ms=*/-1);
  ASSERT_TRUE(ref.exited);
  ASSERT_EQ(ref.exit_code, 0) << "reference CLI run failed";
  const std::string ref_bytes = ReadFileOrEmpty(ref_out);
  ASSERT_FALSE(ref_bytes.empty());

  // The final reference checkpoint must restore cleanly (exercises the
  // per-section CRC validation of the v2 format) at the right iteration.
  {
    TransNModel model(&g, TrainConfig());
    ASSERT_TRUE(ResumeTransNCheckpoint(&model, ref_ckpt).ok());
    EXPECT_EQ(model.completed_iterations(), kIterations);
  }

  // Kill at randomized points across the run (fixed RNG seed keeps the
  // test reproducible; the points still land in different iterations).
  Rng delay_rng(2024);
  for (int trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::string out = TempPath("sigkill_t" + std::to_string(trial) +
                                     ".tsv");
    const std::string ckpt = TempPath("sigkill_t" + std::to_string(trial) +
                                      ".ckpt");
    const int kill_after_ms = static_cast<int>(
        delay_rng.NextDouble(0.15, 0.85) * ref.seconds * 1000.0);

    const ChildResult interrupted =
        RunCli(TrainArgs(graph_path, out, ckpt), kill_after_ms);
    std::printf("trial %d: kill_after=%dms ref=%.0fms -> %s\n", trial,
                kill_after_ms, ref.seconds * 1000.0,
                interrupted.killed
                    ? (FileExists(ckpt) ? "killed, resuming from checkpoint"
                                        : "killed before first checkpoint")
                    : "finished before kill");

    if (interrupted.killed) {
      // A SIGKILLed child must not have produced final embeddings.
      if (FileExists(ckpt)) {
        // The surviving checkpoint must be valid (atomic tmp+rename write,
        // CRC-checked sections) and mid-run.
        TransNModel model(&g, TrainConfig());
        ASSERT_TRUE(ResumeTransNCheckpoint(&model, ckpt).ok())
            << "checkpoint left by SIGKILL failed validation";
        EXPECT_GE(model.completed_iterations(), 1u);
        // Usually mid-run; == kIterations only if the kill landed between
        // the final checkpoint save and the embedding write.
        EXPECT_LE(model.completed_iterations(), kIterations);
        // Resume through the CLI and let it finish.
        std::vector<std::string> resume_args = TrainArgs(graph_path, out, ckpt);
        resume_args.push_back("--resume");
        resume_args.push_back(ckpt);
        const ChildResult resumed = RunCli(resume_args, /*kill_after_ms=*/-1);
        ASSERT_TRUE(resumed.exited);
        ASSERT_EQ(resumed.exit_code, 0) << "--resume run failed";
      } else {
        // Killed before the first checkpoint committed: nothing to resume,
        // rerun from scratch (what an operator would do).
        const ChildResult rerun =
            RunCli(TrainArgs(graph_path, out, ckpt), /*kill_after_ms=*/-1);
        ASSERT_TRUE(rerun.exited);
        ASSERT_EQ(rerun.exit_code, 0);
      }
    } else {
      // The child finished before the kill fired; its output must already
      // match the reference.
      ASSERT_TRUE(interrupted.exited);
      ASSERT_EQ(interrupted.exit_code, 0);
    }

    // The contract: interrupted + resumed == never interrupted, to the byte.
    const std::string bytes = ReadFileOrEmpty(out);
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(bytes, ref_bytes)
        << "embeddings after SIGKILL+resume differ from the uninterrupted "
           "run";

    // And the trial's final checkpoint restores at the final iteration.
    TransNModel model(&g, TrainConfig());
    ASSERT_TRUE(ResumeTransNCheckpoint(&model, ckpt).ok());
    EXPECT_EQ(model.completed_iterations(), kIterations);
  }
}

}  // namespace
}  // namespace transn
