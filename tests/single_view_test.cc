#include "core/single_view.h"

#include <cmath>

#include <gtest/gtest.h>
#include "test_graphs.h"
#include "util/vec.h"

namespace transn {
namespace {

TransNConfig SmallConfig() {
  TransNConfig cfg;
  cfg.dim = 16;
  cfg.walk.walk_length = 10;
  cfg.walk.min_walks_per_node = 2;
  cfg.walk.max_walks_per_node = 4;
  cfg.sgns.negatives = 3;
  return cfg;
}

TEST(SingleViewTest, TablesSizedToView) {
  HeteroGraph g = Fig2aAcademicNetwork();
  std::vector<View> views = BuildViews(g);
  Rng rng(1);
  SingleViewTrainer trainer(&views[0], SmallConfig(), rng);
  EXPECT_EQ(trainer.embeddings().num_rows(), views[0].graph.num_nodes());
  EXPECT_EQ(trainer.embeddings().dim(), 16u);
}

TEST(SingleViewTest, IterationLowersLoss) {
  HeteroGraph g = TwoCommunityNetwork(25, 2);
  std::vector<View> views = BuildViews(g);
  Rng rng(3);
  SingleViewTrainer trainer(&views[0], SmallConfig(), rng);
  double first = trainer.RunIteration(rng);
  double last = first;
  for (int i = 0; i < 5; ++i) last = trainer.RunIteration(rng);
  EXPECT_LT(last, first);
}

TEST(SingleViewTest, LearnsCommunityStructure) {
  // After training on the friendship homo-view, same-community people must
  // be closer (on average, in cosine) than cross-community people.
  const size_t per = 25;
  HeteroGraph g = TwoCommunityNetwork(per, 4);
  std::vector<View> views = BuildViews(g);
  Rng rng(5);
  SingleViewTrainer trainer(&views[0], SmallConfig(), rng);
  for (int i = 0; i < 8; ++i) trainer.RunIteration(rng);

  const ViewGraph& vg = views[0].graph;
  const EmbeddingTable& emb = trainer.embeddings();
  auto cosine = [&](ViewGraph::LocalId a, ViewGraph::LocalId b) {
    double ab = vec::Dot(emb.Row(a), emb.Row(b), emb.dim());
    double aa = vec::Dot(emb.Row(a), emb.Row(a), emb.dim());
    double bb = vec::Dot(emb.Row(b), emb.Row(b), emb.dim());
    return ab / std::sqrt(std::max(aa * bb, 1e-30));
  };
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (NodeId u = 0; u < 2 * per; u += 3) {
    for (NodeId v = u + 1; v < 2 * per; v += 3) {
      ViewGraph::LocalId lu = vg.ToLocal(u), lv = vg.ToLocal(v);
      if (lu == kInvalidNode || lv == kInvalidNode) continue;
      bool same = (u / per) == (v / per);
      (same ? intra : inter) += cosine(lu, lv);
      (same ? n_intra : n_inter)++;
    }
  }
  ASSERT_GT(n_intra, 0);
  ASSERT_GT(n_inter, 0);
  EXPECT_GT(intra / n_intra, inter / n_inter + 0.2);
}

TEST(SingleViewTest, HeterViewUsesWiderContexts) {
  // Smoke check: a heter-view trainer runs and produces finite embeddings.
  HeteroGraph g = Fig4BookRatingNetwork();
  std::vector<View> views = BuildViews(g);
  ASSERT_TRUE(views[0].is_heter);
  Rng rng(6);
  SingleViewTrainer trainer(&views[0], SmallConfig(), rng);
  trainer.RunIteration(rng);
  for (size_t r = 0; r < trainer.embeddings().num_rows(); ++r) {
    for (size_t c = 0; c < trainer.embeddings().dim(); ++c) {
      EXPECT_TRUE(std::isfinite(trainer.embeddings().Row(r)[c]));
    }
  }
}

TEST(SingleViewDeathTest, EmptyViewAborts) {
  HeteroGraphBuilder b;
  NodeTypeId t = b.AddNodeType("X");
  b.AddEdgeType("used");
  b.AddEdgeType("empty");
  b.AddNode(t);
  b.AddNode(t);
  b.AddEdge(0, 1, 0);
  HeteroGraph g = b.Build();
  std::vector<View> views = BuildViews(g);
  Rng rng(7);
  EXPECT_DEATH(SingleViewTrainer(&views[1], SmallConfig(), rng),
               "empty view");
}

}  // namespace
}  // namespace transn
