#include "eval/split.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace transn {
namespace {

TEST(StratifiedSplitTest, PartitionsAllIndices) {
  std::vector<int> labels(100);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = i % 4;
  Rng rng(1);
  TrainTestSplit s = StratifiedSplit(labels, 0.8, rng);
  EXPECT_EQ(s.train.size() + s.test.size(), labels.size());
  std::vector<bool> seen(labels.size(), false);
  for (size_t i : s.train) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
  for (size_t i : s.test) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(StratifiedSplitTest, PreservesClassProportions) {
  std::vector<int> labels;
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < 100; ++i) labels.push_back(k);
  }
  Rng rng(2);
  TrainTestSplit s = StratifiedSplit(labels, 0.9, rng);
  std::vector<int> train_counts(3, 0);
  for (size_t i : s.train) ++train_counts[labels[i]];
  for (int k = 0; k < 3; ++k) EXPECT_EQ(train_counts[k], 90);
}

TEST(StratifiedSplitTest, SmallClassesKeepOneEachSide) {
  std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  Rng rng(3);
  TrainTestSplit s = StratifiedSplit(labels, 0.9, rng);
  std::vector<int> train_counts(3, 0), test_counts(3, 0);
  for (size_t i : s.train) ++train_counts[labels[i]];
  for (size_t i : s.test) ++test_counts[labels[i]];
  for (int k = 0; k < 3; ++k) {
    EXPECT_GE(train_counts[k], 1);
    EXPECT_GE(test_counts[k], 1);
  }
}

TEST(StratifiedSplitTest, SingletonClassGoesToTrain) {
  std::vector<int> labels = {0, 0, 0, 0, 1};
  Rng rng(4);
  TrainTestSplit s = StratifiedSplit(labels, 0.5, rng);
  bool singleton_in_train =
      std::find(s.train.begin(), s.train.end(), 4u) != s.train.end();
  EXPECT_TRUE(singleton_in_train);
}

TEST(StratifiedSplitTest, DifferentSeedsDifferentSplits) {
  std::vector<int> labels(60, 0);
  Rng r1(5), r2(6);
  TrainTestSplit s1 = StratifiedSplit(labels, 0.5, r1);
  TrainTestSplit s2 = StratifiedSplit(labels, 0.5, r2);
  std::sort(s1.test.begin(), s1.test.end());
  std::sort(s2.test.begin(), s2.test.end());
  EXPECT_NE(s1.test, s2.test);
}

TEST(StratifiedSplitDeathTest, BadFractionAborts) {
  std::vector<int> labels = {0, 1};
  Rng rng(7);
  EXPECT_DEATH(StratifiedSplit(labels, 0.0, rng), "Check failed");
  EXPECT_DEATH(StratifiedSplit(labels, 1.0, rng), "Check failed");
}

}  // namespace
}  // namespace transn
