#include "util/status.h"

#include <gtest/gtest.h>

namespace transn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad dim");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> v(Status::Internal("broken"));
  EXPECT_DEATH(v.value(), "INTERNAL: broken");
}

Status Helper(bool fail) {
  RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace transn
