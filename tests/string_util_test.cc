#include "util/string_util.h"

#include <gtest/gtest.h>

namespace transn {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, SingleField) {
  EXPECT_EQ(Split("abc", '\t'), (std::vector<std::string>{"abc"}));
}

TEST(SplitWhitespaceTest, DropsEmptyFields) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(TrimTest, RemovesEdges) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_FALSE(StartsWith("hello", "el"));
}

TEST(ParseDoubleTest, Valid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
}

TEST(ParseDoubleTest, Invalid) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(ParseInt64Test, Valid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
}

TEST(ParseInt64Test, Invalid) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12.5", &v));
  EXPECT_FALSE(ParseInt64("x12", &v));
}

}  // namespace
}  // namespace transn
