#ifndef TRANSN_TESTS_TEST_GRAPHS_H_
#define TRANSN_TESTS_TEST_GRAPHS_H_

#include "graph/hetero_graph.h"
#include "util/rng.h"

namespace transn {

/// The paper's Figure 2(a) academic network: three authors (A1–A3), two
/// papers (P1, P2), one university (U1); authorship (red), citation (blue),
/// affiliation (green) edges. A1/A3 share the university; A1 wrote P1, A2
/// and A3 wrote P2; P1 and P2 cite each other.
inline HeteroGraph Fig2aAcademicNetwork() {
  HeteroGraphBuilder b;
  NodeTypeId author = b.AddNodeType("Author");
  NodeTypeId paper = b.AddNodeType("Paper");
  NodeTypeId univ = b.AddNodeType("University");
  EdgeTypeId authorship = b.AddEdgeType("authorship");
  EdgeTypeId citation = b.AddEdgeType("citation");
  EdgeTypeId affiliation = b.AddEdgeType("affiliation");

  NodeId a1 = b.AddNode(author, "A1");
  NodeId a2 = b.AddNode(author, "A2");
  NodeId a3 = b.AddNode(author, "A3");
  NodeId p1 = b.AddNode(paper, "P1");
  NodeId p2 = b.AddNode(paper, "P2");
  NodeId u1 = b.AddNode(univ, "U1");

  b.AddEdge(a1, p1, authorship);
  b.AddEdge(a2, p2, authorship);
  b.AddEdge(a3, p2, authorship);
  b.AddEdge(p1, p2, citation);
  b.AddEdge(a1, u1, affiliation);
  b.AddEdge(a3, u1, affiliation);
  return b.Build();
}

/// The paper's Figure 4 book-rating view: readers R1–R3, books B1–B3, with
/// rating weights; R1 and R3 both rate B2 low (2 resp. 1) while R2 rates it
/// high (5).
inline HeteroGraph Fig4BookRatingNetwork() {
  HeteroGraphBuilder b;
  NodeTypeId reader = b.AddNodeType("Reader");
  NodeTypeId book = b.AddNodeType("Book");
  EdgeTypeId rating = b.AddEdgeType("rating");

  NodeId r1 = b.AddNode(reader, "R1");
  NodeId r2 = b.AddNode(reader, "R2");
  NodeId r3 = b.AddNode(reader, "R3");
  NodeId b1 = b.AddNode(book, "B1");
  NodeId b2 = b.AddNode(book, "B2");
  NodeId b3 = b.AddNode(book, "B3");

  b.AddEdge(r1, b1, rating, 4.0);
  b.AddEdge(r1, b2, rating, 2.0);
  b.AddEdge(r2, b2, rating, 5.0);
  b.AddEdge(r3, b2, rating, 1.0);
  b.AddEdge(r3, b3, rating, 4.0);
  return b.Build();
}

/// A two-community, two-view weighted network for learning tests: nodes of
/// type X form a friendship homo-view, and a tag heter-view connects X to
/// tags. Communities are encoded in both views.
inline HeteroGraph TwoCommunityNetwork(size_t per_community, uint64_t seed) {
  Rng rng(seed);
  HeteroGraphBuilder b;
  NodeTypeId person = b.AddNodeType("Person");
  NodeTypeId tag = b.AddNodeType("Tag");
  EdgeTypeId friendship = b.AddEdgeType("friendship");
  EdgeTypeId tagging = b.AddEdgeType("tagging");

  std::vector<NodeId> people;
  for (size_t i = 0; i < 2 * per_community; ++i) {
    NodeId n = b.AddNode(person);
    b.SetLabel(n, static_cast<int>(i / per_community));
    people.push_back(n);
  }
  std::vector<NodeId> tags;
  for (size_t i = 0; i < 8; ++i) tags.push_back(b.AddNode(tag));

  auto comm = [&](NodeId n) { return n / per_community; };
  // Friendship: mostly intra-community.
  for (NodeId u : people) {
    for (int k = 0; k < 3; ++k) {
      NodeId v = rng.NextBernoulli(0.9)
                     ? static_cast<NodeId>(comm(u) * per_community +
                                           rng.NextUint64(per_community))
                     : people[rng.NextUint64(people.size())];
      if (u == v || b.num_nodes() == 0) continue;
      b.AddEdge(u, v, friendship, 1.0 + rng.NextUint64(4));
    }
  }
  // Tagging: tags 0-3 belong to community 0, tags 4-7 to community 1.
  for (NodeId u : people) {
    for (int k = 0; k < 2; ++k) {
      size_t base = comm(u) == 0 ? 0 : 4;
      NodeId t = tags[rng.NextBernoulli(0.9) ? base + rng.NextUint64(4)
                                             : rng.NextUint64(8)];
      b.AddEdge(u, t, tagging, 1.0 + rng.NextUint64(4));
    }
  }
  return b.Build();
}

}  // namespace transn

#endif  // TRANSN_TESTS_TEST_GRAPHS_H_
