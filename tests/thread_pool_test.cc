#include "util/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace transn {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotent) {
  ThreadPool pool(2);
  pool.Wait();
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DestructorJoinsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroAndOneElement) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(pool, 0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(pool, 1, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace transn
