#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "util/fault.h"

namespace transn {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotent) {
  ThreadPool pool(2);
  pool.Wait();
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DestructorJoinsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroAndOneElement) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(pool, 0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(pool, 1, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolStressTest, ManySmallTasksFromMultipleProducers) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Schedule([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStressTest, WaitConcurrentWithSchedule) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::atomic<bool> stop{false};
  // Hammer Wait() from two threads while the main thread keeps scheduling;
  // Wait must never miss work or deadlock.
  std::vector<std::thread> waiters;
  for (int w = 0; w < 2; ++w) {
    waiters.emplace_back([&pool, &stop] {
      while (!stop.load()) pool.Wait();
    });
  }
  for (int i = 0; i < 300; ++i) {
    pool.Schedule([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  stop.store(true);
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(done.load(), 300);
}

TEST(ThreadPoolStressTest, PoolOfSizeOneRunsTasksInFifoOrder) {
  ThreadPool pool(1);
  ASSERT_EQ(pool.num_threads(), 1u);
  std::vector<int> order;  // written only by the single worker thread
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolStressTest, DestructionWithEmptyQueue) {
  { ThreadPool pool(3); }  // never scheduled anything
  {
    ThreadPool pool(3);
    pool.Wait();  // Wait on an idle pool, then destroy
  }
  SUCCEED();
}

TEST(ThreadPoolStressTest, ScheduleFromInsideATask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&pool, &counter] {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();  // must cover tasks scheduled by tasks
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolFaultTest, TaskExceptionRethrownByWait) {
  ThreadPool pool(3);
  pool.Schedule([] { throw std::runtime_error("task blew up"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool survives: later work runs and a clean Wait() doesn't rethrow.
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolFaultTest, OnlyFirstExceptionIsKept) {
  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) {
    pool.Schedule([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);  // one rethrow...
  pool.Wait();                                    // ...then clean
}

TEST(ThreadPoolFaultTest, ConcurrentThrowsYieldExactlyOneKnownException) {
  // Tasks on every worker throw at the same instant (start barrier): the
  // error latch must keep exactly one of the in-flight exceptions — one of
  // the messages actually thrown, not a torn mix — rethrow it from a single
  // Wait(), and leave the pool fully usable.
  static constexpr int kThrowers = 8;
  ThreadPool pool(4);
  std::atomic<int> armed{0};
  for (int i = 0; i < kThrowers; ++i) {
    pool.Schedule([&armed, i] {
      armed.fetch_add(1);
      // Spin until every thrower is in flight so the throws overlap across
      // all workers instead of serializing through the queue.
      while (armed.load() < std::min(kThrowers, 4)) {
      }
      throw std::runtime_error("concurrent boom #" + std::to_string(i));
    });
  }
  std::string caught;
  try {
    pool.Wait();
  } catch (const std::runtime_error& e) {
    caught = e.what();
  }
  ASSERT_FALSE(caught.empty()) << "Wait() swallowed every exception";
  EXPECT_EQ(caught.rfind("concurrent boom #", 0), 0u)
      << "rethrown message not from the thrown set: " << caught;
  const int id = std::atoi(caught.c_str() + std::string("concurrent boom #").size());
  EXPECT_GE(id, 0);
  EXPECT_LT(id, kThrowers);
  // Exactly the first exception is latched: a second Wait() is clean.
  pool.Wait();
  // And the pool still runs work afterwards.
  std::atomic<int> counter{0};
  for (int i = 0; i < 16; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolFaultTest, InjectedPoolFaultSurfacesInWait) {
  fault::FaultInjector::Default().Arm(fault::kPoolTask,
                                      fault::FaultSpec::OnceAfterN(3));
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Schedule([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), fault::InjectedFaultError);
  fault::FaultInjector::Default().DisarmAll();
  // Exactly one task was swallowed by the injected fault; the rest ran.
  EXPECT_EQ(ran.load(), 7);
}

TEST(ThreadPoolFaultTest, UnclaimedExceptionDiscardedByDestructor) {
  // Destroying a pool whose last batch failed without a Wait() must not
  // terminate the process.
  ThreadPool pool(2);
  pool.Schedule([] { throw std::runtime_error("never observed"); });
}

TEST(ThreadPoolStressTest, RepeatedScheduleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 20; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (cycle + 1) * 20);
  }
}

}  // namespace
}  // namespace transn
