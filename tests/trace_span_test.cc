#include "obs/trace.h"

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace transn {
namespace obs {
namespace {

TEST(TraceSpanTest, NestingBuildsSlashPaths) {
  TraceCollector collector;
  {
    TraceSpan walk("walk", &collector);
    EXPECT_EQ(walk.path(), "walk");
    {
      TraceSpan view("view", &collector);
      EXPECT_EQ(view.path(), "walk/view");
    }
  }
  std::vector<std::string> paths = collector.Paths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "walk");
  EXPECT_EQ(paths[1], "walk/view");
  EXPECT_EQ(collector.GetStats("walk").count, 1u);
  EXPECT_EQ(collector.GetStats("walk/view").count, 1u);
}

TEST(TraceSpanTest, SiblingSpansAggregate) {
  TraceCollector collector;
  for (int i = 0; i < 3; ++i) {
    TraceSpan span("pass", &collector);
  }
  const SpanStats stats = collector.GetStats("pass");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_GE(stats.total_seconds, 0.0);
  EXPECT_LE(stats.min_seconds, stats.max_seconds);
  EXPECT_GE(stats.total_seconds, stats.max_seconds);
}

TEST(TraceSpanTest, InnerBeforeOuterOrdering) {
  // The inner span must close (and record) before the outer one; the outer
  // total includes the inner's, never the reverse.
  TraceCollector collector;
  {
    TraceSpan outer("outer", &collector);
    {
      TraceSpan inner("inner", &collector);
    }
    EXPECT_EQ(collector.GetStats("outer/inner").count, 1u);
    EXPECT_EQ(collector.GetStats("outer").count, 0u);  // still open
  }
  const SpanStats outer = collector.GetStats("outer");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_GE(outer.total_seconds,
            collector.GetStats("outer/inner").total_seconds);
}

TEST(TraceSpanTest, CurrentPathTracksInnermostSpan) {
  TraceCollector collector;
  EXPECT_EQ(TraceSpan::CurrentPath(), "");
  {
    TraceSpan a("a", &collector);
    EXPECT_EQ(TraceSpan::CurrentPath(), "a");
    {
      TraceSpan b("b", &collector);
      EXPECT_EQ(TraceSpan::CurrentPath(), "a/b");
    }
    EXPECT_EQ(TraceSpan::CurrentPath(), "a");
  }
  EXPECT_EQ(TraceSpan::CurrentPath(), "");
}

TEST(TraceSpanTest, SlashInNameIsSanitized) {
  TraceCollector collector;
  {
    TraceSpan span("view:a/b", &collector);
    EXPECT_EQ(span.path(), "view:a_b");
  }
  EXPECT_EQ(collector.GetStats("view:a_b").count, 1u);
}

TEST(TraceSpanTest, ExplicitParentNestsAcrossThreads) {
  TraceCollector collector;
  {
    TraceSpan train("train", &collector);
    const std::string parent = train.path();
    std::thread worker([&collector, parent] {
      // The worker's own stack is empty; nesting comes from the explicit
      // parent path captured on the scheduling thread.
      EXPECT_EQ(TraceSpan::CurrentPath(), "");
      TraceSpan shard("shard", parent, &collector);
      EXPECT_EQ(shard.path(), "train/shard");
    });
    worker.join();
  }
  EXPECT_EQ(collector.GetStats("train/shard").count, 1u);
  EXPECT_EQ(collector.GetStats("train").count, 1u);
}

TEST(TraceSpanTest, PoolShardSpansCountedExactly) {
  TraceCollector collector;
  constexpr size_t kShards = 8;
  {
    TraceSpan view("view", &collector);
    const std::string parent = view.path();
    ThreadPool pool(4);
    for (size_t s = 0; s < kShards; ++s) {
      pool.Schedule([&collector, parent] {
        TraceSpan shard("shard", parent, &collector);
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(collector.GetStats("view/shard").count, kShards);
}

TEST(TraceCollectorTest, AncestorsMaterializedWhileParentOpen) {
  TraceCollector collector;
  collector.Record("train/iteration/view:UU", 0.5);
  // The intermediate paths exist as zero-count placeholders, keeping the
  // export tree connected even though no parent span has closed yet.
  std::vector<std::string> paths = collector.Paths();
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], "train");
  EXPECT_EQ(paths[1], "train/iteration");
  EXPECT_EQ(paths[2], "train/iteration/view:UU");
  EXPECT_EQ(collector.GetStats("train").count, 0u);
  EXPECT_EQ(collector.GetStats("train/iteration/view:UU").count, 1u);
}

TEST(TraceCollectorTest, StatsAggregateMinMaxTotal) {
  TraceCollector collector;
  collector.Record("span", 2.0);
  collector.Record("span", 1.0);
  collector.Record("span", 4.0);
  const SpanStats stats = collector.GetStats("span");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.total_seconds, 7.0);
  EXPECT_DOUBLE_EQ(stats.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_seconds, 4.0);
}

TEST(TraceCollectorTest, JsonNestsChildrenUnderParents) {
  TraceCollector collector;
  collector.Record("train/iteration", 1.0);
  collector.Record("train", 3.0);
  collector.Record("serve", 0.5);
  std::ostringstream os;
  collector.WriteJson(os);
  const std::string json = os.str();
  // Two roots; "iteration" appears only inside train's children array.
  const size_t train_pos = json.find("\"path\":\"train\"");
  const size_t child_pos = json.find("\"path\":\"train/iteration\"");
  const size_t serve_pos = json.find("\"path\":\"serve\"");
  ASSERT_NE(train_pos, std::string::npos) << json;
  ASSERT_NE(child_pos, std::string::npos) << json;
  ASSERT_NE(serve_pos, std::string::npos) << json;
  EXPECT_LT(train_pos, child_pos) << json;
  EXPECT_NE(json.find("\"children\":[{\"name\":\"iteration\""),
            std::string::npos)
      << json;
}

// Paths that sort between a parent and its children (characters like '-'
// and '.' precede '/') must not detach the subtree.
TEST(TraceCollectorTest, JsonTreeSurvivesInterleavedSiblingNames) {
  TraceCollector collector;
  collector.Record("train/iteration", 1.0);
  collector.Record("train-extra", 1.0);  // sorts between "train" and "train/"
  collector.Record("train.dotted", 1.0);
  std::ostringstream os;
  collector.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"children\":[{\"name\":\"iteration\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"path\":\"train-extra\""), std::string::npos) << json;
}

TEST(TraceCollectorTest, ResetClearsEverything) {
  TraceCollector collector;
  collector.Record("a/b", 1.0);
  collector.Reset();
  EXPECT_TRUE(collector.Paths().empty());
  EXPECT_EQ(collector.GetStats("a/b").count, 0u);
}

TEST(TraceSpanTest, DefaultCollectorIsUsedWhenNull) {
  const SpanStats before = TraceCollector::Default().GetStats("default_span");
  {
    TraceSpan span("default_span");
  }
  const SpanStats after = TraceCollector::Default().GetStats("default_span");
  EXPECT_EQ(after.count, before.count + 1);
}

}  // namespace
}  // namespace obs
}  // namespace transn
