#include "serve/translation_service.h"

#include <vector>

#include <gtest/gtest.h>
#include "core/transn.h"
#include "core/translator.h"
#include "serve_test_util.h"
#include "test_graphs.h"

namespace transn {
namespace {

/// Row-average of the core translator's forward pass on the embedding tiled
/// into all L rows — the reference the serving-side ApplyTranslator must
/// reproduce.
std::vector<double> TiledForwardReference(const Translator& t,
                                          const std::vector<double>& emb) {
  Matrix tiled(t.seq_len(), t.dim());
  for (size_t r = 0; r < t.seq_len(); ++r) {
    for (size_t c = 0; c < t.dim(); ++c) tiled(r, c) = emb[c];
  }
  Matrix out = t.Forward(tiled);
  std::vector<double> avg(t.dim(), 0.0);
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) avg[c] += out(r, c);
  }
  for (double& v : avg) v /= static_cast<double>(out.rows());
  return avg;
}

TEST(TranslationServiceTest, DirectHitReturnsViewRowUntranslated) {
  HeteroGraph g = TwoCommunityNetwork(10, 3);
  TransNModel model(&g, SmallServeConfig());
  model.Fit();
  EmbeddingStore store = ExportAndLoad(model, "ts_direct.bin");
  TranslationService service(&store);

  const NodeId person = 0;  // every person has friendship edges
  auto resolved = service.Resolve(person, /*target_view=*/0);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_FALSE(resolved->translated);
  EXPECT_EQ(resolved->chain, std::vector<uint32_t>{0});
  std::vector<double> want = model.ViewEmbedding(0, person);
  ASSERT_EQ(resolved->embedding.size(), want.size());
  for (size_t c = 0; c < want.size(); ++c) {
    EXPECT_EQ(resolved->embedding[c], want[c]);  // stored binary, bit-exact
  }
}

TEST(TranslationServiceTest, ColdStartMatchesCoreTranslatorForward) {
  HeteroGraph g = TwoCommunityNetwork(10, 3);
  TransNModel model(&g, SmallServeConfig());
  model.Fit();
  EmbeddingStore store = ExportAndLoad(model, "ts_coldstart.bin");
  TranslationService service(&store);

  // Tags live only in the tagging view; asking for one in the friendship
  // view exercises the cold-start path through T_{tagging->friendship}.
  ASSERT_EQ(store.FindViewByName("friendship"), 0);
  ASSERT_EQ(store.FindViewByName("tagging"), 1);
  const NodeId tag = static_cast<NodeId>(2 * 10);  // first tag node
  ASSERT_EQ(store.view(1).LocalOf(tag) >= 0, true);
  ASSERT_LT(store.view(0).LocalOf(tag), 0);

  auto resolved = service.Resolve(tag, /*target_view=*/0);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_TRUE(resolved->translated);
  EXPECT_EQ(resolved->chain, (std::vector<uint32_t>{1, 0}));

  const CrossViewTrainer& cross = model.cross_view_trainer(0);
  ASSERT_EQ(cross.pair().view_i, 0u);
  ASSERT_EQ(cross.pair().view_j, 1u);
  std::vector<double> want =
      TiledForwardReference(cross.translator_ji(), model.ViewEmbedding(1, tag));
  ASSERT_EQ(resolved->embedding.size(), want.size());
  for (size_t c = 0; c < want.size(); ++c) {
    EXPECT_NEAR(resolved->embedding[c], want[c], 1e-12) << "col " << c;
  }
}

TEST(TranslationServiceTest, ApplyTranslatorMatchesCoreOnArbitraryInput) {
  HeteroGraph g = TwoCommunityNetwork(8, 7);
  TransNModel model(&g, SmallServeConfig());
  model.Fit();
  EmbeddingStore store = ExportAndLoad(model, "ts_apply.bin");
  TranslationService service(&store);

  const ServingTranslator* t01 = store.FindTranslator(0, 1);
  ASSERT_NE(t01, nullptr);
  std::vector<double> emb(store.dim());
  for (size_t c = 0; c < emb.size(); ++c) {
    emb[c] = 0.25 * static_cast<double>(c) - 1.0;  // mixed-sign input
  }
  std::vector<double> got = service.ApplyTranslator(*t01, emb.data());
  std::vector<double> want =
      TiledForwardReference(model.cross_view_trainer(0).translator_ij(), emb);
  ASSERT_EQ(got.size(), want.size());
  for (size_t c = 0; c < got.size(); ++c) {
    EXPECT_NEAR(got[c], want[c], 1e-12);
  }
}

TEST(TranslationServiceTest, MultiHopChainAcrossViewPairs) {
  // Fig. 2(a): U1 exists only in the affiliation view, and no
  // affiliation<->citation pair exists (no common nodes), so reaching the
  // citation view requires affiliation -> authorship -> citation.
  HeteroGraph g = Fig2aAcademicNetwork();
  TransNConfig cfg = SmallServeConfig();
  cfg.translator_seq_len = 2;  // tiny views: keep windows samplable
  TransNModel model(&g, cfg);
  model.Fit();
  EmbeddingStore store = ExportAndLoad(model, "ts_multihop.bin");
  TranslationService service(&store);

  const int authorship = store.FindViewByName("authorship");
  const int citation = store.FindViewByName("citation");
  const int affiliation = store.FindViewByName("affiliation");
  ASSERT_GE(authorship, 0);
  ASSERT_GE(citation, 0);
  ASSERT_GE(affiliation, 0);
  ASSERT_EQ(store.FindTranslator(static_cast<uint32_t>(affiliation),
                                 static_cast<uint32_t>(citation)),
            nullptr);

  const NodeId u1 = store.FindNode("U1");
  ASSERT_NE(u1, kInvalidNode);
  ASSERT_LT(store.view(citation).LocalOf(u1), 0);

  auto resolved = service.Resolve(u1, static_cast<uint32_t>(citation));
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_TRUE(resolved->translated);
  ASSERT_EQ(resolved->chain,
            (std::vector<uint32_t>{static_cast<uint32_t>(affiliation),
                                   static_cast<uint32_t>(authorship),
                                   static_cast<uint32_t>(citation)}));

  // The chain result equals manually composing the two stored hops.
  const ServingTranslator* hop1 = store.FindTranslator(
      static_cast<uint32_t>(affiliation), static_cast<uint32_t>(authorship));
  const ServingTranslator* hop2 = store.FindTranslator(
      static_cast<uint32_t>(authorship), static_cast<uint32_t>(citation));
  ASSERT_NE(hop1, nullptr);
  ASSERT_NE(hop2, nullptr);
  const ServingView& src = store.view(affiliation);
  const int64_t local = src.LocalOf(u1);
  ASSERT_GE(local, 0);
  std::vector<double> x(src.embeddings.Row(static_cast<size_t>(local)),
                        src.embeddings.Row(static_cast<size_t>(local)) +
                            store.dim());
  x = service.ApplyTranslator(*hop1, x.data());
  x = service.ApplyTranslator(*hop2, x.data());
  ASSERT_EQ(resolved->embedding.size(), x.size());
  for (size_t c = 0; c < x.size(); ++c) {
    EXPECT_EQ(resolved->embedding[c], x[c]);
  }
}

TEST(TranslationServiceTest, NodeInNoViewIsNotFound) {
  HeteroGraphBuilder b;
  NodeTypeId person = b.AddNodeType("Person");
  EdgeTypeId friendship = b.AddEdgeType("friendship");
  NodeId n0 = b.AddNode(person);
  NodeId n1 = b.AddNode(person);
  NodeId isolated = b.AddNode(person);
  b.AddEdge(n0, n1, friendship);
  HeteroGraph g = b.Build();

  TransNConfig cfg = SmallServeConfig();
  cfg.translator_seq_len = 2;
  TransNModel model(&g, cfg);
  model.Fit();
  EmbeddingStore store = ExportAndLoad(model, "ts_notfound.bin");
  TranslationService service(&store);

  auto resolved = service.Resolve(isolated, 0);
  EXPECT_EQ(resolved.status().code(), StatusCode::kNotFound);
}

TEST(TranslationServiceTest, DisconnectedViewsAreFailedPrecondition) {
  // Two views with disjoint node sets: no view-pair, so no translator chain.
  HeteroGraphBuilder b;
  NodeTypeId ta = b.AddNodeType("A");
  NodeTypeId tb = b.AddNodeType("B");
  EdgeTypeId ea = b.AddEdgeType("ea");
  EdgeTypeId eb = b.AddEdgeType("eb");
  NodeId a0 = b.AddNode(ta);
  NodeId a1 = b.AddNode(ta);
  NodeId b0 = b.AddNode(tb);
  NodeId b1 = b.AddNode(tb);
  b.AddEdge(a0, a1, ea);
  b.AddEdge(b0, b1, eb);
  HeteroGraph g = b.Build();

  TransNConfig cfg = SmallServeConfig();
  cfg.translator_seq_len = 2;
  TransNModel model(&g, cfg);
  model.Fit();
  EmbeddingStore store = ExportAndLoad(model, "ts_unreachable.bin");
  ASSERT_TRUE(store.translators().empty());
  TranslationService service(&store);

  const int view_eb = store.FindViewByName("eb");
  ASSERT_GE(view_eb, 0);
  auto resolved = service.Resolve(a0, static_cast<uint32_t>(view_eb));
  EXPECT_EQ(resolved.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace transn
