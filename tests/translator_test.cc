#include "core/translator.h"

#include <cmath>

#include <gtest/gtest.h>
#include "nn/grad_check.h"
#include "nn/init.h"

namespace transn {
namespace {

TEST(TranslatorTest, OutputShapeMatchesInput) {
  Rng rng(1);
  Translator t(6, 12, 3, /*simple=*/false, rng);
  Matrix in = GaussianInit(6, 12, 1.0, rng);
  Matrix out = t.Forward(in);
  EXPECT_EQ(out.rows(), 6u);
  EXPECT_EQ(out.cols(), 12u);
}

TEST(TranslatorTest, SimpleVariantHasOneEncoder) {
  Rng rng(2);
  Translator full(8, 16, 4, false, rng);
  Translator simple(8, 16, 4, true, rng);
  EXPECT_EQ(full.num_encoders(), 4u);
  EXPECT_EQ(simple.num_encoders(), 1u);
  // Parameters per encoder: L*L + L.
  EXPECT_EQ(full.num_parameters(), 4u * (64 + 8));
  EXPECT_EQ(simple.num_parameters(), 64 + 8u);
}

TEST(TranslatorTest, FinalLayerLinearByDefault) {
  // With the default linear last layer, outputs may be negative; with the
  // literal Eq. 9 (final_relu), outputs are confined to the non-negative
  // orthant.
  Rng rng(21);
  Translator linear(4, 8, 2, false, rng);
  Translator relu(4, 8, 2, false, rng, /*final_relu=*/true);
  EXPECT_FALSE(linear.final_relu());
  EXPECT_TRUE(relu.final_relu());

  // Force a sign-flipping final layer: the linear variant must emit
  // negatives where the literal-Eq.-9 variant clamps to zero.
  const size_t last = linear.num_encoders() - 1;
  linear.weight(last).value *= -1.0;
  relu.weight(relu.num_encoders() - 1).value *= -1.0;

  Rng in_rng(22);
  Matrix in = UniformInit(4, 8, 0.2, 1.0, in_rng);
  Matrix out_linear = linear.Forward(in);
  Matrix out_relu = relu.Forward(in);
  bool any_negative = false;
  for (size_t i = 0; i < out_linear.size(); ++i) {
    any_negative |= out_linear.data()[i] < 0.0;
    EXPECT_GE(out_relu.data()[i], 0.0);
  }
  EXPECT_TRUE(any_negative);
}

TEST(TranslatorTest, NearIdentityAtInit) {
  // W initialized near identity with zero bias: a fresh translator should
  // roughly preserve its (non-negative) input.
  Rng rng(3);
  Translator t(4, 8, 1, /*simple=*/true, rng);
  Matrix in = UniformInit(4, 8, 0.2, 1.0, rng);
  Matrix out = t.Forward(in);
  double rel = Sub(out, in).FrobeniusNorm() / in.FrobeniusNorm();
  EXPECT_LT(rel, 0.35);
}

TEST(TranslatorTest, GradientFlowsToParametersAndInput) {
  Rng rng(4);
  Translator t(4, 6, 2, false, rng);
  AdamOptimizer opt;
  t.RegisterParams(&opt);

  Tape tape;
  Matrix in = GaussianInit(4, 6, 1.0, rng);
  Matrix target = GaussianInit(4, 6, 1.0, rng);
  Var x = tape.Input(in, true);
  Var out = t.Apply(tape, x);
  Var loss = RowCosineLoss(out, tape.Input(target, false));
  tape.Backward(loss);
  EXPECT_GT(x.grad().FrobeniusNorm(), 0.0);
}

TEST(TranslatorTest, BackwardMatchesNumericGradientThroughStack) {
  Rng rng(5);
  Translator t(3, 4, 2, false, rng);
  Matrix in = GaussianInit(3, 4, 1.0, rng);
  Matrix target = GaussianInit(3, 4, 1.0, rng);

  Tape tape;
  Var x = tape.Input(in, true);
  Var loss = RowCosineLoss(t.Apply(tape, x), tape.Input(target, false));
  tape.Backward(loss);

  Matrix numeric = NumericGradient(
      [&](const Matrix& probe) {
        Tape t2;
        Var px = t2.Input(probe, false);
        return RowCosineLoss(t.Apply(t2, px), t2.Input(target, false))
            .value()(0, 0);
      },
      in);
  EXPECT_LT(MaxRelativeError(x.grad(), numeric), 2e-5);
}

TEST(TranslatorTest, TrainingShrinksTranslationLoss) {
  Rng rng(6);
  Translator t(4, 8, 2, false, rng);
  AdamOptimizer opt(AdamConfig{.learning_rate = 0.01});
  t.RegisterParams(&opt);
  Matrix in = GaussianInit(4, 8, 1.0, rng);
  Matrix target = GaussianInit(4, 8, 1.0, rng);

  double first = 0.0, last = 0.0;
  for (int step = 0; step < 400; ++step) {
    Tape tape;
    Var x = tape.Input(in, false);
    Var loss = RowCosineLoss(t.Apply(tape, x), tape.Input(target, false));
    if (step == 0) first = loss.value()(0, 0);
    last = loss.value()(0, 0);
    tape.Backward(loss);
    opt.Step();
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(TranslatorDeathTest, WrongInputShapeAborts) {
  Rng rng(7);
  Translator t(4, 8, 1, false, rng);
  Tape tape;
  Var x = tape.Input(Matrix(5, 8, 0.0), false);
  EXPECT_DEATH(t.Apply(tape, x), "Check failed");
}

}  // namespace
}  // namespace transn
