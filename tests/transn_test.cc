#include "core/transn.h"

#include <cmath>

#include <gtest/gtest.h>
#include "eval/node_classification.h"
#include "test_graphs.h"

namespace transn {
namespace {

TransNConfig SmallConfig() {
  TransNConfig cfg;
  cfg.dim = 16;
  cfg.iterations = 3;
  cfg.walk.walk_length = 12;
  cfg.walk.min_walks_per_node = 2;
  cfg.walk.max_walks_per_node = 4;
  cfg.sgns.negatives = 3;
  cfg.translator_encoders = 2;
  cfg.translator_seq_len = 4;
  cfg.cross_paths_per_pair = 15;
  cfg.seed = 17;
  return cfg;
}

TEST(TransNTest, BuildsViewsAndPairs) {
  HeteroGraph g = Fig2aAcademicNetwork();
  TransNModel model(&g, SmallConfig());
  EXPECT_EQ(model.views().size(), 3u);
  EXPECT_EQ(model.view_pairs().size(), 2u);
  EXPECT_EQ(model.num_cross_trainers(), 2u);
}

TEST(TransNTest, FinalEmbeddingsAverageViewSpecificOnes) {
  HeteroGraph g = Fig2aAcademicNetwork();
  TransNConfig cfg = SmallConfig();
  // Plain (unnormalized) §III-C averaging for exact arithmetic checks.
  cfg.view_average = ViewAverageKind::kPlain;
  TransNModel model(&g, cfg);
  model.Fit();
  Matrix final = model.FinalEmbeddings();
  ASSERT_EQ(final.rows(), g.num_nodes());
  ASSERT_EQ(final.cols(), 16u);

  // A1 (node 0) is in the authorship (view 0) and affiliation (view 2)
  // views; its final embedding must be the mean of those two.
  std::vector<double> v0 = model.ViewEmbedding(0, 0);
  std::vector<double> v2 = model.ViewEmbedding(2, 0);
  for (size_t c = 0; c < 16; ++c) {
    EXPECT_NEAR(final(0, c), (v0[c] + v2[c]) / 2.0, 1e-12);
  }

  // U1 (node 5) appears only in the affiliation view.
  std::vector<double> u = model.ViewEmbedding(2, 5);
  for (size_t c = 0; c < 16; ++c) EXPECT_NEAR(final(5, c), u[c], 1e-12);
}

TEST(TransNTest, ViewEmbeddingZeroWhenAbsent) {
  HeteroGraph g = Fig2aAcademicNetwork();
  TransNModel model(&g, SmallConfig());
  // U1 (node 5) is not in the citation view (view 1).
  std::vector<double> v = model.ViewEmbedding(1, 5);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(TransNTest, DeterministicForFixedSeed) {
  HeteroGraph g = TwoCommunityNetwork(15, 5);
  TransNModel m1(&g, SmallConfig());
  TransNModel m2(&g, SmallConfig());
  m1.Fit();
  m2.Fit();
  Matrix e1 = m1.FinalEmbeddings();
  Matrix e2 = m2.FinalEmbeddings();
  for (size_t i = 0; i < e1.size(); ++i) {
    ASSERT_DOUBLE_EQ(e1.data()[i], e2.data()[i]);
  }
}

TEST(TransNTest, DifferentSeedsDiffer) {
  HeteroGraph g = TwoCommunityNetwork(15, 5);
  TransNConfig c1 = SmallConfig(), c2 = SmallConfig();
  c2.seed = c1.seed + 1;
  TransNModel m1(&g, c1), m2(&g, c2);
  m1.Fit();
  m2.Fit();
  Matrix diff = Sub(m1.FinalEmbeddings(), m2.FinalEmbeddings());
  EXPECT_GT(diff.FrobeniusNorm(), 1e-6);
}

TEST(TransNTest, EmbeddingsClassifyCommunities) {
  HeteroGraph g = TwoCommunityNetwork(40, 6);
  TransNConfig cfg = SmallConfig();
  cfg.iterations = 5;
  TransNModel model(&g, cfg);
  model.Fit();
  auto res = EvaluateNodeClassification(g, model.FinalEmbeddings(),
                                        {.repeats = 5, .seed = 2});
  EXPECT_GT(res.micro_f1, 0.8);
  EXPECT_GT(res.macro_f1, 0.8);
}

TEST(TransNTest, WithoutCrossViewSkipsCrossTrainers) {
  HeteroGraph g = Fig2aAcademicNetwork();
  TransNConfig cfg = SmallConfig();
  cfg.enable_cross_view = false;
  TransNModel model(&g, cfg);
  EXPECT_EQ(model.num_cross_trainers(), 0u);
  TransNIterationStats stats = model.RunIteration();
  EXPECT_DOUBLE_EQ(stats.mean_cross_view_loss, 0.0);
  EXPECT_GT(stats.mean_single_view_loss, 0.0);
}

TEST(TransNTest, AllAblationVariantsRun) {
  HeteroGraph g = TwoCommunityNetwork(12, 7);
  for (int variant = 0; variant < 5; ++variant) {
    TransNConfig cfg = SmallConfig();
    cfg.iterations = 1;
    switch (variant) {
      case 0:
        cfg.enable_cross_view = false;
        break;
      case 1:
        cfg.simple_walk = true;
        break;
      case 2:
        cfg.simple_translator = true;
        break;
      case 3:
        cfg.enable_translation_tasks = false;
        break;
      case 4:
        cfg.enable_reconstruction_tasks = false;
        break;
    }
    TransNModel model(&g, cfg);
    model.Fit();
    Matrix emb = model.FinalEmbeddings();
    for (size_t i = 0; i < emb.size(); ++i) {
      ASSERT_TRUE(std::isfinite(emb.data()[i])) << "variant " << variant;
    }
  }
}

TEST(TransNTest, SharedViewInitAlignsViewSpaces) {
  HeteroGraph g = Fig2aAcademicNetwork();
  TransNConfig cfg = SmallConfig();
  cfg.shared_view_init = true;
  TransNModel model(&g, cfg);
  // Before training, node A1's embeddings in the authorship (0) and
  // affiliation (2) views must be identical.
  std::vector<double> v0 = model.ViewEmbedding(0, 0);
  std::vector<double> v2 = model.ViewEmbedding(2, 0);
  for (size_t c = 0; c < v0.size(); ++c) EXPECT_DOUBLE_EQ(v0[c], v2[c]);

  TransNConfig indep = SmallConfig();
  indep.shared_view_init = false;
  TransNModel model2(&g, indep);
  std::vector<double> w0 = model2.ViewEmbedding(0, 0);
  std::vector<double> w2 = model2.ViewEmbedding(2, 0);
  double diff = 0.0;
  for (size_t c = 0; c < w0.size(); ++c) diff += std::fabs(w0[c] - w2[c]);
  EXPECT_GT(diff, 1e-9);
}

TEST(TransNTest, NormalizedAverageUnitNormForSingleViewNodes) {
  HeteroGraph g = Fig2aAcademicNetwork();
  TransNConfig cfg = SmallConfig();
  cfg.view_average = ViewAverageKind::kRowNormalized;
  TransNModel model(&g, cfg);
  model.Fit();
  Matrix emb = model.FinalEmbeddings();
  // U1 (node 5) lives only in the affiliation view: its final embedding is
  // a single normalized vector -> unit norm.
  double norm = 0.0;
  for (size_t c = 0; c < emb.cols(); ++c) norm += emb(5, c) * emb(5, c);
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-9);
}

TEST(TransNTest, HistoryRecordsIterations) {
  HeteroGraph g = Fig2aAcademicNetwork();
  TransNModel model(&g, SmallConfig());
  model.Fit();
  EXPECT_EQ(model.history().size(), SmallConfig().iterations);
}

TEST(TransNDeathTest, CrossViewWithNoTasksAborts) {
  HeteroGraph g = Fig2aAcademicNetwork();
  TransNConfig cfg = SmallConfig();
  cfg.enable_translation_tasks = false;
  cfg.enable_reconstruction_tasks = false;
  EXPECT_DEATH(TransNModel(&g, cfg), "at least one");
}

}  // namespace
}  // namespace transn
