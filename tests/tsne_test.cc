#include "eval/tsne.h"

#include <cmath>

#include <gtest/gtest.h>
#include "eval/metrics.h"
#include "nn/init.h"
#include "util/rng.h"

namespace transn {
namespace {

/// Three well-separated Gaussian blobs in 10-D.
Matrix Blobs(std::vector<int>* labels, uint64_t seed) {
  Rng rng(seed);
  const int per = 20;
  Matrix x(3 * per, 10);
  labels->clear();
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < per; ++i) {
      const size_t row = static_cast<size_t>(k * per + i);
      for (size_t c = 0; c < 10; ++c) {
        x(row, c) = 8.0 * k * (c == 0 ? 1.0 : 0.0) + 0.3 * rng.NextGaussian();
      }
      labels->push_back(k);
    }
  }
  return x;
}

TEST(TsneTest, OutputShape) {
  std::vector<int> labels;
  Matrix x = Blobs(&labels, 1);
  Matrix y = Tsne(x, {.iterations = 50});
  EXPECT_EQ(y.rows(), x.rows());
  EXPECT_EQ(y.cols(), 2u);
}

TEST(TsneTest, OutputIsFiniteAndCentered) {
  std::vector<int> labels;
  Matrix x = Blobs(&labels, 2);
  Matrix y = Tsne(x, {.iterations = 120});
  double mean0 = 0.0, mean1 = 0.0;
  for (size_t r = 0; r < y.rows(); ++r) {
    ASSERT_TRUE(std::isfinite(y(r, 0)));
    ASSERT_TRUE(std::isfinite(y(r, 1)));
    mean0 += y(r, 0);
    mean1 += y(r, 1);
  }
  EXPECT_NEAR(mean0 / y.rows(), 0.0, 1e-9);
  EXPECT_NEAR(mean1 / y.rows(), 0.0, 1e-9);
}

TEST(TsneTest, SeparatedBlobsStaySeparated) {
  std::vector<int> labels;
  Matrix x = Blobs(&labels, 3);
  Matrix y = Tsne(x, {.perplexity = 10.0, .iterations = 400});
  EXPECT_GT(SilhouetteScore(y, labels), 0.5);
}

TEST(TsneTest, DeterministicForSeed) {
  std::vector<int> labels;
  Matrix x = Blobs(&labels, 4);
  Matrix y1 = Tsne(x, {.iterations = 60, .seed = 9});
  Matrix y2 = Tsne(x, {.iterations = 60, .seed = 9});
  for (size_t i = 0; i < y1.size(); ++i) {
    ASSERT_DOUBLE_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(TsneDeathTest, PerplexityTooLargeAborts) {
  Matrix x(10, 3, 0.0);
  EXPECT_DEATH(Tsne(x, {.perplexity = 5.0}), "perplexity too large");
}

}  // namespace
}  // namespace transn
