// CLI flag hardening: an unrecognized flag must make both CLIs exit 2 with
// an "unknown flag" error AND the usage text — eagerly, before any heavy
// work (no model/graph load, no training). Binary locations come from the
// TRANSN_CLI_PATH / TRANSN_SERVE_PATH compile definitions (set in
// tests/CMakeLists.txt from $<TARGET_FILE:...>).

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace transn {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult RunCommand(const std::string& command) {
  RunResult result;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  if (pipe == nullptr) return result;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    result.output.append(buf, n);
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

void ExpectUnknownFlagError(const RunResult& r, const std::string& flag) {
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("unknown flag --" + flag), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("usage:"), std::string::npos)
      << "usage text missing:\n"
      << r.output;
}

TEST(UnknownFlagTest, CliRejectsUnknownFlagWithUsage) {
  // --graph points nowhere: the unknown flag must fail BEFORE the graph
  // load even tries (eager RequireKnown), so no "cannot open" appears.
  RunResult r = RunCommand(std::string(TRANSN_CLI_PATH) +
                    " stats --graph /nonexistent.tsv --bogus 1");
  ExpectUnknownFlagError(r, "bogus");
  EXPECT_EQ(r.output.find("/nonexistent.tsv"), std::string::npos)
      << "flag check ran after the graph load:\n"
      << r.output;
}

TEST(UnknownFlagTest, CliRejectsUnknownFlagOnEverySubcommand) {
  for (const char* cmd : {"generate", "train", "classify", "linkpred"}) {
    RunResult r = RunCommand(std::string(TRANSN_CLI_PATH) + " " + cmd +
                      " --not-a-flag x");
    ExpectUnknownFlagError(r, "not-a-flag");
  }
}

TEST(UnknownFlagTest, ServeRejectsUnknownFlagOnEverySubcommand) {
  for (const char* cmd : {"info", "query", "serve"}) {
    RunResult r = RunCommand(std::string(TRANSN_SERVE_PATH) + " " + cmd +
                      " --model /nonexistent.bin --typo-flag 1");
    ExpectUnknownFlagError(r, "typo-flag");
    EXPECT_EQ(r.output.find("cannot open"), std::string::npos)
        << cmd << " tried to load the model before the flag check:\n"
        << r.output;
  }
}

TEST(UnknownFlagTest, FlagAcceptedByOtherSubcommandStillErrors) {
  // --queries belongs to `query`, not `info`: cross-subcommand leakage.
  RunResult r = RunCommand(std::string(TRANSN_SERVE_PATH) +
                    " info --model /nonexistent.bin --queries q.txt");
  ExpectUnknownFlagError(r, "queries");
}

TEST(UnknownFlagTest, MalformedFlagSyntaxPrintsUsage) {
  RunResult r =
      RunCommand(std::string(TRANSN_CLI_PATH) + " stats not-a-flag");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("expected --flag"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(UnknownFlagTest, KnownFlagsStillWork) {
  RunResult r = RunCommand(std::string(TRANSN_SERVE_PATH) + " info --model /nope");
  EXPECT_EQ(r.exit_code, 2) << r.output;  // model really doesn't exist
  EXPECT_EQ(r.output.find("unknown flag"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("cannot open"), std::string::npos) << r.output;
}

}  // namespace
}  // namespace transn
