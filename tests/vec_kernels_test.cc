// Equivalence and error-bound tests for the shared vector-kernel layer
// (util/vec.h): every dispatched kernel against its scalar reference across
// all remainder-lane cases, the sigmoid/log LUT against its documented error
// bound, and an end-to-end guard that the scalar fallback reproduces the
// historical (pre-kernel-layer) trainer loops bit for bit.

#include "util/vec.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "emb/embedding_table.h"
#include "emb/hierarchical_softmax.h"
#include "emb/negative_sampler.h"
#include "emb/sgns.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace transn {
namespace {

/// Every dim in [1, 130]: covers all vector-body/remainder splits for 2-,
/// 4-, 8-, and 16-wide strides (the AVX2 dot kernel unrolls to 16, so 130
/// exercises full blocks + every partial tail).
constexpr size_t kMaxDim = 130;

/// Saves and restores the process-wide SIMD dispatch flag around each test,
/// so tests that force the scalar path don't leak into their neighbors.
class VecKernelsTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = vec::SimdEnabled(); }
  void TearDown() override { vec::SetSimdEnabled(saved_); }

 private:
  bool saved_ = true;
};

std::vector<double> RandomVec(size_t n, uint64_t seed, double lo = -1.0,
                              double hi = 1.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.NextDouble(lo, hi);
  return v;
}

TEST_F(VecKernelsTest, IsaNamesAreStable) {
  EXPECT_STREQ(vec::IsaName(vec::Isa::kScalar), "scalar");
  EXPECT_STREQ(vec::IsaName(vec::Isa::kAvx2), "avx2");
  EXPECT_STREQ(vec::IsaName(vec::Isa::kNeon), "neon");
}

TEST_F(VecKernelsTest, DisablingSimdForcesScalarDispatch) {
  vec::SetSimdEnabled(false);
  EXPECT_FALSE(vec::SimdEnabled());
  EXPECT_EQ(vec::ActiveIsa(), vec::Isa::kScalar);
  vec::SetSimdEnabled(true);
  EXPECT_TRUE(vec::SimdEnabled());
  EXPECT_EQ(vec::ActiveIsa(), vec::BestIsa());
}

// --- Dispatched vs reference, every dim 1..130 -----------------------------
// With SIMD enabled the vector bodies reassociate and contract (FMA), so the
// results may differ from the sequential reference in the last bits — but
// never by more than 1e-12 on unit-range operands. With SIMD disabled the
// dispatched kernels must be bit-identical to the reference.

TEST_F(VecKernelsTest, DotMatchesReferenceAcrossDims) {
  vec::SetSimdEnabled(true);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    const auto a = RandomVec(n, 2 * n);
    const auto b = RandomVec(n, 2 * n + 1);
    const double got = vec::Dot(a.data(), b.data(), n);
    const double want = vec::ref::Dot(a.data(), b.data(), n);
    EXPECT_NEAR(got, want, 1e-12) << "dim " << n;
  }
}

TEST_F(VecKernelsTest, DotI8IsBitIdenticalToReferenceAcrossDims) {
  // Int8 dots accumulate exactly in int32, so every ISA must agree with the
  // reference to the bit — this is what makes the ANN index's stored graph
  // portable across machines (serve/ann_index.h).
  vec::SetSimdEnabled(true);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    Rng rng(77 * n);
    std::vector<int8_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<int8_t>(rng.NextInt(-127, 127));
      b[i] = static_cast<int8_t>(rng.NextInt(-127, 127));
    }
    const int32_t got = vec::DotI8(a.data(), b.data(), n);
    const int32_t want = vec::ref::DotI8(a.data(), b.data(), n);
    EXPECT_EQ(got, want) << "dim " << n;
  }
}

TEST_F(VecKernelsTest, DotF32IsSequentialOnEveryIsa) {
  // DotF32 deliberately never dispatches to SIMD (sequential double
  // accumulation is the cross-ISA determinism contract for ANN re-ranking),
  // so enabled and disabled SIMD must agree exactly.
  for (size_t n = 1; n <= kMaxDim; ++n) {
    Rng rng(91 * n);
    std::vector<float> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.NextDouble(-1.0, 1.0));
      b[i] = static_cast<float>(rng.NextDouble(-1.0, 1.0));
    }
    vec::SetSimdEnabled(true);
    const double with_simd = vec::DotF32(a.data(), b.data(), n);
    vec::SetSimdEnabled(false);
    const double without = vec::DotF32(a.data(), b.data(), n);
    vec::SetSimdEnabled(true);
    EXPECT_EQ(with_simd, without) << "dim " << n;
    EXPECT_EQ(with_simd, vec::ref::DotF32(a.data(), b.data(), n));
  }
}

TEST_F(VecKernelsTest, AxpyMatchesReferenceAcrossDims) {
  vec::SetSimdEnabled(true);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    const auto x = RandomVec(n, 3 * n);
    auto y_got = RandomVec(n, 3 * n + 1);
    auto y_want = y_got;
    vec::Axpy(0.37, x.data(), y_got.data(), n);
    vec::ref::Axpy(0.37, x.data(), y_want.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y_got[i], y_want[i], 1e-12) << "dim " << n << " lane " << i;
    }
  }
}

TEST_F(VecKernelsTest, ScaledSubMatchesReferenceAcrossDims) {
  vec::SetSimdEnabled(true);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    const auto x = RandomVec(n, 5 * n);
    auto y_got = RandomVec(n, 5 * n + 1);
    auto y_want = y_got;
    vec::ScaledSub(y_got.data(), 0.52, x.data(), n);
    vec::ref::ScaledSub(y_want.data(), 0.52, x.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y_got[i], y_want[i], 1e-12) << "dim " << n << " lane " << i;
    }
  }
}

TEST_F(VecKernelsTest, SquaredDistanceMatchesReferenceAcrossDims) {
  vec::SetSimdEnabled(true);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    const auto a = RandomVec(n, 7 * n);
    const auto b = RandomVec(n, 7 * n + 1);
    const double got = vec::SquaredDistance(a.data(), b.data(), n);
    const double want = vec::ref::SquaredDistance(a.data(), b.data(), n);
    EXPECT_NEAR(got, want, 1e-12) << "dim " << n;
    EXPECT_GE(got, 0.0);
  }
}

TEST_F(VecKernelsTest, FusedSgnsUpdateMatchesReferenceAcrossDims) {
  vec::SetSimdEnabled(true);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    const auto v = RandomVec(n, 11 * n);
    auto u_got = RandomVec(n, 11 * n + 1);
    auto u_want = u_got;
    auto grad_got = RandomVec(n, 11 * n + 2);
    auto grad_want = grad_got;
    vec::FusedSgnsUpdate(0.43, 0.013, v.data(), u_got.data(), grad_got.data(),
                         n);
    vec::ref::FusedSgnsUpdate(0.43, 0.013, v.data(), u_want.data(),
                              grad_want.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(u_got[i], u_want[i], 1e-12) << "dim " << n << " lane " << i;
      EXPECT_NEAR(grad_got[i], grad_want[i], 1e-12)
          << "dim " << n << " lane " << i;
    }
  }
}

TEST_F(VecKernelsTest, ScalarModeIsBitIdenticalToReference) {
  vec::SetSimdEnabled(false);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    const auto a = RandomVec(n, 13 * n);
    const auto b = RandomVec(n, 13 * n + 1);
    // Exact equality: with SIMD off the dispatched kernels ARE the
    // sequential reference loops.
    EXPECT_EQ(vec::Dot(a.data(), b.data(), n),
              vec::ref::Dot(a.data(), b.data(), n));
    EXPECT_EQ(vec::SquaredDistance(a.data(), b.data(), n),
              vec::ref::SquaredDistance(a.data(), b.data(), n));
    auto y_got = b;
    auto y_want = b;
    vec::Axpy(0.21, a.data(), y_got.data(), n);
    vec::ref::Axpy(0.21, a.data(), y_want.data(), n);
    EXPECT_EQ(y_got, y_want);
    for (double x : a) {
      EXPECT_EQ(vec::Sigmoid(9.0 * x), vec::ref::Sigmoid(9.0 * x));
      EXPECT_EQ(vec::NegLogSigmoid(9.0 * x), vec::ref::NegLogSigmoid(9.0 * x));
    }
  }
}

// --- Sigmoid / -log(sigmoid) LUT -------------------------------------------

TEST_F(VecKernelsTest, SigmoidLutStaysWithinDocumentedErrorBound) {
  vec::SetSimdEnabled(true);
  // Dense scan across the table range plus both guarded tails. DESIGN.md §7
  // documents a 1e-6 max-absolute-error bound for both LUTs.
  double max_sig_err = 0.0;
  double max_nls_err = 0.0;
  for (int i = -90000; i <= 90000; ++i) {
    const double x = i * 1e-4;  // [-9, 9], step 1e-4
    max_sig_err =
        std::max(max_sig_err, std::abs(vec::Sigmoid(x) - vec::ref::Sigmoid(x)));
    max_nls_err = std::max(
        max_nls_err, std::abs(vec::NegLogSigmoid(x) - vec::ref::NegLogSigmoid(x)));
  }
  EXPECT_LT(max_sig_err, 1e-6);
  EXPECT_LT(max_nls_err, 1e-6);
}

TEST_F(VecKernelsTest, SigmoidIsExactOutsideLutRange) {
  vec::SetSimdEnabled(true);
  for (double x : {-20.0, -8.0001, 8.0001, 20.0, 700.0, -700.0}) {
    EXPECT_EQ(vec::Sigmoid(x), vec::ref::Sigmoid(x)) << "x=" << x;
    EXPECT_EQ(vec::NegLogSigmoid(x), vec::ref::NegLogSigmoid(x)) << "x=" << x;
  }
  // Extreme tails stay finite / saturate cleanly.
  EXPECT_EQ(vec::Sigmoid(-1000.0), 0.0);
  EXPECT_EQ(vec::Sigmoid(1000.0), 1.0);
  EXPECT_TRUE(std::isfinite(vec::NegLogSigmoid(-1000.0)));
}

TEST_F(VecKernelsTest, SgnsPairLossScalarModeMatchesHistoricalExpression) {
  vec::SetSimdEnabled(false);
  for (double score : {-30.0, -4.0, -0.5, 0.0, 0.5, 4.0, 30.0}) {
    const double pred = vec::Sigmoid(score);
    EXPECT_EQ(vec::SgnsPairLoss(score, pred, true),
              -std::log(std::max(pred, 1e-12)));
    EXPECT_EQ(vec::SgnsPairLoss(score, pred, false),
              -std::log(std::max(1.0 - pred, 1e-12)));
  }
  // SIMD mode computes the same quantity through the -log(sigmoid) LUT.
  vec::SetSimdEnabled(true);
  for (double score : {-4.0, -0.5, 0.0, 0.5, 4.0}) {
    const double pred = vec::Sigmoid(score);
    EXPECT_NEAR(vec::SgnsPairLoss(score, pred, true),
                -std::log(vec::ref::Sigmoid(score)), 1e-5);
    EXPECT_NEAR(vec::SgnsPairLoss(score, pred, false),
                -std::log(1.0 - vec::ref::Sigmoid(score)), 1e-5);
  }
}

// --- End-to-end scalar-fallback guard --------------------------------------
// Replays the historical (pre-kernel-layer) SGNS TrainPair — sequential dot,
// exact std::exp sigmoid, interleaved grad/update loop — and checks that the
// production trainer under the scalar fallback produces bit-identical tables
// and losses. This is the in-process version of the TRANSN_NO_SIMD=1
// reproducibility guarantee (DESIGN.md §7); dim 520 > kMaxStackDim also
// exercises the per-thread scratch path.

double HistoricalSigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// The seed repo's SgnsTrainer::TrainPair, verbatim modulo atomics (which
/// are value-transparent single-threaded).
double HistoricalSgnsTrainPair(Matrix* input, Matrix* context,
                               const NegativeSampler& sampler,
                               const SgnsConfig& cfg, uint32_t center,
                               uint32_t ctx, Rng& rng) {
  const size_t d = input->cols();
  const double lr = cfg.learning_rate;
  double* v = input->Row(center);
  std::vector<double> center_grad(d, 0.0);
  std::vector<double> v_snap(v, v + d);

  double loss = 0.0;
  auto update_with = [&](uint32_t ctx_id, double label) {
    double* u = context->Row(ctx_id);
    double score = 0.0;
    for (size_t i = 0; i < d; ++i) score += v_snap[i] * u[i];
    const double pred = HistoricalSigmoid(score);
    const double g = pred - label;
    loss += label > 0.5 ? -std::log(std::max(pred, 1e-12))
                        : -std::log(std::max(1.0 - pred, 1e-12));
    for (size_t i = 0; i < d; ++i) {
      center_grad[i] += g * u[i];
      u[i] -= lr * g * v_snap[i];
    }
  };

  update_with(ctx, 1.0);
  for (int k = 0; k < cfg.negatives; ++k) {
    update_with(sampler.Sample(rng, ctx), 0.0);
  }
  for (size_t i = 0; i < d; ++i) v[i] -= lr * center_grad[i];
  return loss;
}

void CheckScalarSgnsBitIdentical(size_t dim) {
  vec::SetSimdEnabled(false);
  constexpr size_t kVocab = 12;
  const std::vector<double> counts(kVocab, 3.0);
  const NegativeSampler sampler(counts);
  const SgnsConfig cfg{.negatives = 4, .learning_rate = 0.05};

  Rng init_rng(99);
  EmbeddingTable input(kVocab, dim, init_rng);
  EmbeddingTable context(kVocab, dim, init_rng);
  Matrix ref_input = input.values();
  Matrix ref_context = context.values();

  SgnsTrainer trainer(&input, &context, &sampler, cfg);
  Rng trainer_rng(7);
  Rng ref_rng(7);
  Rng pair_rng(8);
  for (int step = 0; step < 200; ++step) {
    const auto center = static_cast<uint32_t>(pair_rng.NextUint64() % kVocab);
    auto ctx = static_cast<uint32_t>(pair_rng.NextUint64() % kVocab);
    if (ctx == center) ctx = (ctx + 1) % kVocab;
    const double got = trainer.TrainPair(center, ctx, trainer_rng);
    const double want = HistoricalSgnsTrainPair(
        &ref_input, &ref_context, sampler, cfg, center, ctx, ref_rng);
    ASSERT_EQ(got, want) << "loss diverged at step " << step;
  }
  for (size_t r = 0; r < kVocab; ++r) {
    for (size_t c = 0; c < dim; ++c) {
      ASSERT_EQ(input.values()(r, c), ref_input(r, c))
          << "input[" << r << "," << c << "]";
      ASSERT_EQ(context.values()(r, c), ref_context(r, c))
          << "context[" << r << "," << c << "]";
    }
  }
}

TEST_F(VecKernelsTest, ScalarFallbackSgnsIsBitIdenticalToHistoricalLoop) {
  CheckScalarSgnsBitIdentical(16);  // stack-scratch path
}

TEST_F(VecKernelsTest, ScalarFallbackSgnsBitIdenticalBeyondStackDim) {
  CheckScalarSgnsBitIdentical(SgnsTrainer::kMaxStackDim + 8);  // PairScratch
}

/// Same guard for hierarchical softmax: the historical loop over the Huffman
/// path, replayed against the production trainer's returned losses and input
/// table under the scalar fallback.
TEST_F(VecKernelsTest, ScalarFallbackHierarchicalSoftmaxBitIdentical) {
  vec::SetSimdEnabled(false);
  constexpr size_t kVocab = 10;
  constexpr size_t kDim = 16;
  std::vector<double> counts(kVocab);
  for (size_t i = 0; i < kVocab; ++i) counts[i] = 1.0 + static_cast<double>(i);

  Rng init_rng(41);
  EmbeddingTable input(kVocab, kDim, init_rng);
  Matrix ref_input = input.values();
  const double lr = 0.05;
  HierarchicalSoftmaxTrainer trainer(&input, counts, lr);
  const HuffmanTree& tree = trainer.tree();
  Matrix ref_nodes(tree.num_internal_nodes(), kDim);  // zero-init, as trainer

  Rng pair_rng(17);
  for (int step = 0; step < 200; ++step) {
    const auto center = static_cast<uint32_t>(pair_rng.NextUint64() % kVocab);
    auto ctx = static_cast<uint32_t>(pair_rng.NextUint64() % kVocab);
    if (ctx == center) ctx = (ctx + 1) % kVocab;
    const double got = trainer.TrainPair(center, ctx);

    // Historical reference step.
    double* v = ref_input.Row(center);
    const std::vector<bool>& code = tree.Code(ctx);
    const std::vector<uint32_t>& path = tree.Path(ctx);
    std::vector<double> center_grad(kDim, 0.0);
    std::vector<double> v_snap(v, v + kDim);
    double want = 0.0;
    for (size_t j = 0; j < code.size(); ++j) {
      double* u = ref_nodes.Row(path[j]);
      double score = 0.0;
      for (size_t i = 0; i < kDim; ++i) score += u[i] * v_snap[i];
      const double label = code[j] ? 0.0 : 1.0;
      const double pred = HistoricalSigmoid(score);
      want += label > 0.5 ? -std::log(std::max(pred, 1e-12))
                          : -std::log(std::max(1.0 - pred, 1e-12));
      const double g = pred - label;
      for (size_t i = 0; i < kDim; ++i) {
        center_grad[i] += g * u[i];
        u[i] -= lr * g * v_snap[i];
      }
    }
    for (size_t i = 0; i < kDim; ++i) v[i] -= lr * center_grad[i];
    ASSERT_EQ(got, want) << "loss diverged at step " << step;
  }
  for (size_t r = 0; r < kVocab; ++r) {
    for (size_t c = 0; c < kDim; ++c) {
      ASSERT_EQ(input.values()(r, c), ref_input(r, c))
          << "input[" << r << "," << c << "]";
    }
  }
}

}  // namespace
}  // namespace transn
