#include "graph/view_pair.h"

#include <set>

#include <gtest/gtest.h>
#include "test_graphs.h"

namespace transn {
namespace {

TEST(FindViewPairsTest, Fig2aPairs) {
  HeteroGraph g = Fig2aAcademicNetwork();
  std::vector<View> views = BuildViews(g);
  std::vector<ViewPair> pairs = FindViewPairs(views);
  // authorship∩citation = {P1,P2}; authorship∩affiliation = {A1,A3};
  // citation∩affiliation = ∅.
  ASSERT_EQ(pairs.size(), 2u);

  EXPECT_EQ(pairs[0].view_i, 0u);
  EXPECT_EQ(pairs[0].view_j, 1u);
  EXPECT_EQ(pairs[0].common_nodes, (std::vector<NodeId>{3, 4}));

  EXPECT_EQ(pairs[1].view_i, 0u);
  EXPECT_EQ(pairs[1].view_j, 2u);
  EXPECT_EQ(pairs[1].common_nodes, (std::vector<NodeId>{0, 2}));
}

TEST(FindViewPairsTest, DisjointViewsProduceNoPair) {
  HeteroGraphBuilder b;
  NodeTypeId t = b.AddNodeType("X");
  EdgeTypeId e1 = b.AddEdgeType("r1");
  EdgeTypeId e2 = b.AddEdgeType("r2");
  for (int i = 0; i < 4; ++i) b.AddNode(t);
  b.AddEdge(0, 1, e1);
  b.AddEdge(2, 3, e2);
  HeteroGraph g = b.Build();
  EXPECT_TRUE(FindViewPairs(BuildViews(g)).empty());
}

TEST(PairedSubviewTest, ContainsCommonNodesAndNeighbors) {
  HeteroGraph g = Fig2aAcademicNetwork();
  std::vector<View> views = BuildViews(g);
  std::vector<ViewPair> pairs = FindViewPairs(views);

  // Pair (authorship, citation) common = {P1, P2}. In the authorship view
  // the paired subview is P1,P2 plus their authorship neighbors A1,A2,A3.
  PairedSubview sub =
      BuildPairedSubview(views[0], pairs[0].common_nodes);
  std::set<NodeId> nodes(sub.graph.nodes().begin(), sub.graph.nodes().end());
  EXPECT_EQ(nodes, (std::set<NodeId>{0, 1, 2, 3, 4}));

  EXPECT_EQ(sub.num_common(), 2u);
  EXPECT_TRUE(sub.is_common[sub.graph.ToLocal(3)]);
  EXPECT_TRUE(sub.is_common[sub.graph.ToLocal(4)]);
  EXPECT_FALSE(sub.is_common[sub.graph.ToLocal(0)]);
}

TEST(PairedSubviewTest, KeepsOnlyInducedEdges) {
  // A chain a-b-c-d in one view with only {b} common: subview must hold
  // a-b and b-c (edges incident to kept nodes a,b,c) but not c-d? c and d:
  // c is kept (neighbor of b), d is not adjacent to any common node.
  HeteroGraphBuilder bld;
  NodeTypeId t = bld.AddNodeType("X");
  EdgeTypeId e = bld.AddEdgeType("r");
  for (int i = 0; i < 4; ++i) bld.AddNode(t);
  bld.AddEdge(0, 1, e);
  bld.AddEdge(1, 2, e);
  bld.AddEdge(2, 3, e);
  HeteroGraph g = bld.Build();
  std::vector<View> views = BuildViews(g);

  PairedSubview sub = BuildPairedSubview(views[0], {1});
  std::set<NodeId> nodes(sub.graph.nodes().begin(), sub.graph.nodes().end());
  EXPECT_EQ(nodes, (std::set<NodeId>{0, 1, 2}));
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // 0-1 and 1-2; 2-3 dropped
}

TEST(PairedSubviewTest, IntersectionReadingWouldBeDegenerate) {
  // Documents the Definition-5 reading choice (DESIGN.md §2.4): with the
  // literal M ∩ A, the Fig. 2(a) (authorship, citation) subview would keep
  // only common nodes adjacent to other common nodes — here none, since P1
  // and P2 are not authorship-adjacent. The union reading keeps a usable
  // subview (asserted in ContainsCommonNodesAndNeighbors above).
  HeteroGraph g = Fig2aAcademicNetwork();
  std::vector<View> views = BuildViews(g);
  const ViewGraph& authorship = views[0].graph;
  // P1 (id 3) and P2 (id 4) share no authorship edge:
  EXPECT_FALSE(authorship.AreAdjacent(authorship.ToLocal(3),
                                      authorship.ToLocal(4)));
}

TEST(PairedSubviewTest, WeightsPreserved) {
  HeteroGraph g = Fig4BookRatingNetwork();
  std::vector<View> views = BuildViews(g);
  PairedSubview sub = BuildPairedSubview(views[0], {4});  // B2 common
  ViewGraph::LocalId b2 = sub.graph.ToLocal(4);
  ASSERT_NE(b2, kInvalidNode);
  EXPECT_EQ(sub.graph.degree(b2), 3u);
  EXPECT_DOUBLE_EQ(sub.graph.weighted_degree(b2), 8.0);  // 2+5+1
}

}  // namespace
}  // namespace transn
