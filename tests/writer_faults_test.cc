// Every persistent-format writer in the codebase must go through the atomic
// safe_io path: under an injected ENOSPC each one returns a non-OK Status,
// leaves an existing target byte-for-byte untouched, and leaves no temp
// file behind. One regression test per writer.

#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include <gtest/gtest.h>
#include "core/model_io.h"
#include "core/transn.h"
#include "graph/graph_io.h"
#include "nn/init.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve_test_util.h"
#include "test_graphs.h"
#include "util/csv.h"
#include "util/fault.h"
#include "util/safe_io.h"

namespace transn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class WriterFaultsTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultInjector::Default().DisarmAll(); }

  /// Arms ENOSPC, runs `write` against a path holding sentinel bytes, and
  /// checks the failure contract: non-OK, target untouched, no temp left.
  void ExpectAtomicFailure(const char* name,
                           const std::function<Status(const std::string&)>&
                               write) {
    std::string path = TempPath(name);
    { std::ofstream(path, std::ios::binary) << "sentinel"; }
    fault::FaultInjector::Default().Arm(fault::kIoWrite,
                                        fault::FaultSpec::Always());
    Status s = write(path);
    fault::FaultInjector::Default().DisarmAll();
    EXPECT_FALSE(s.ok()) << name << " succeeded under ENOSPC";
    EXPECT_EQ(s.code(), StatusCode::kIoError) << s.ToString();
    EXPECT_EQ(Slurp(path), "sentinel") << name << " clobbered its target";
    EXPECT_FALSE(std::ifstream(path + ".tmp").good())
        << name << " left " << path << ".tmp";
    // Disarmed, the same write lands and replaces the sentinel.
    Status ok = write(path);
    EXPECT_TRUE(ok.ok()) << name << ": " << ok.ToString();
    EXPECT_NE(Slurp(path), "sentinel");
    std::remove(path.c_str());
  }
};

TEST_F(WriterFaultsTest, SaveEmbeddings) {
  HeteroGraph g = Fig2aAcademicNetwork();
  Rng rng(1);
  Matrix emb = GaussianInit(g.num_nodes(), 4, 1.0, rng);
  ExpectAtomicFailure("faulted_emb.tsv", [&](const std::string& path) {
    return SaveEmbeddings(g, emb, path);
  });
}

TEST_F(WriterFaultsTest, SaveTransNCheckpoint) {
  HeteroGraph g = TwoCommunityNetwork(12, 4);
  TransNModel model(&g, SmallServeConfig());
  ExpectAtomicFailure("faulted.ckpt", [&](const std::string& path) {
    return SaveTransNCheckpoint(model, path);
  });
}

TEST_F(WriterFaultsTest, ExportServingModel) {
  HeteroGraph g = TwoCommunityNetwork(12, 4);
  TransNModel model(&g, SmallServeConfig());
  ExpectAtomicFailure("faulted.bin", [&](const std::string& path) {
    return ExportServingModel(model, path);
  });
}

TEST_F(WriterFaultsTest, SaveGraph) {
  HeteroGraph g = Fig2aAcademicNetwork();
  ExpectAtomicFailure("faulted_graph.tsv", [&](const std::string& path) {
    return SaveGraph(g, path);
  });
}

TEST_F(WriterFaultsTest, WriteCsv) {
  TablePrinter table({"metric", "value"});
  table.AddRow({"f1", "0.5"});
  ExpectAtomicFailure("faulted.csv", [&](const std::string& path) {
    return table.WriteCsv(path);
  });
}

TEST_F(WriterFaultsTest, DumpDefaultObservability) {
  ExpectAtomicFailure("faulted_metrics.json", [&](const std::string& path) {
    return obs::DumpDefaultObservability(path);
  });
}

TEST_F(WriterFaultsTest, FailedWritesAreCountedInMetrics) {
  auto* counter = obs::MetricsRegistry::Default().GetCounter(
      obs::kIoWriteErrorsTotal, "errors",
      "failed file writes (CheckedWriter/AtomicFileWriter)");
  const uint64_t before = counter->Value();
  HeteroGraph g = Fig2aAcademicNetwork();
  fault::FaultInjector::Default().Arm(fault::kIoWrite,
                                      fault::FaultSpec::Always());
  EXPECT_FALSE(SaveGraph(g, TempPath("counted_graph.tsv")).ok());
  fault::FaultInjector::Default().DisarmAll();
  EXPECT_GT(counter->Value(), before)
      << "io.write_errors_total did not observe the failed write";
}

}  // namespace
}  // namespace transn
