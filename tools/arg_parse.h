#ifndef TRANSN_TOOLS_ARG_PARSE_H_
#define TRANSN_TOOLS_ARG_PARSE_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "util/string_util.h"

namespace transn {

/// Minimal --flag value parser shared by the CLIs; flags may appear in any
/// order. Unknown flags are caught by CheckAllUsed() after every handler has
/// pulled what it needs.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (!StartsWith(key, "--")) {
        Fail("expected --flag, got '" + key + "'");
      }
      if (i + 1 >= argc) Fail("missing value for " + key);
      values_[key.substr(2)] = argv[++i];
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    if (it != values_.end()) {
      used_.insert(key);
      return it->second;
    }
    if (fallback.empty()) Fail("missing required flag --" + key);
    return fallback;
  }

  /// Like GetString but an absent flag yields "" instead of an error (for
  /// genuinely optional string flags with no sensible default).
  std::string GetOptionalString(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return "";
    used_.insert(key);
    return it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    used_.insert(key);
    double v = 0;
    if (!ParseDouble(it->second, &v)) Fail("bad number for --" + key);
    return v;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    used_.insert(key);
    int64_t v = 0;
    if (!ParseInt64(it->second, &v)) Fail("bad integer for --" + key);
    return v;
  }

  bool GetBool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    used_.insert(key);
    return it->second == "true" || it->second == "1";
  }

  void CheckAllUsed() const {
    for (const auto& [key, value] : values_) {
      if (used_.count(key) == 0) Fail("unknown flag --" + key);
    }
  }

  [[noreturn]] static void Fail(const std::string& message) {
    std::fprintf(stderr, "error: %s\n", message.c_str());
    std::exit(2);
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

}  // namespace transn

#endif  // TRANSN_TOOLS_ARG_PARSE_H_
