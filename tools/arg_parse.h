#ifndef TRANSN_TOOLS_ARG_PARSE_H_
#define TRANSN_TOOLS_ARG_PARSE_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace transn {

/// Minimal --flag value parser shared by the CLIs; flags may appear in any
/// order. Subcommand handlers reject unrecognized flags *eagerly* with
/// RequireKnown() (before any heavy work like loading a model), and
/// CheckAllUsed() is the backstop that catches flags a handler declared but
/// never actually consumed on its taken code path. Every parse failure
/// prints the tool's usage text (SetUsageHandler) and exits 2.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (!StartsWith(key, "--")) {
        Fail("expected --flag, got '" + key + "'");
      }
      if (i + 1 >= argc) Fail("missing value for " + key);
      values_[key.substr(2)] = argv[++i];
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    if (it != values_.end()) {
      used_.insert(key);
      return it->second;
    }
    if (fallback.empty()) Fail("missing required flag --" + key);
    return fallback;
  }

  /// Like GetString but an absent flag yields "" instead of an error (for
  /// genuinely optional string flags with no sensible default).
  std::string GetOptionalString(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return "";
    used_.insert(key);
    return it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    used_.insert(key);
    double v = 0;
    if (!ParseDouble(it->second, &v)) Fail("bad number for --" + key);
    return v;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    used_.insert(key);
    int64_t v = 0;
    if (!ParseInt64(it->second, &v)) Fail("bad integer for --" + key);
    return v;
  }

  bool GetBool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    used_.insert(key);
    return it->second == "true" || it->second == "1";
  }

  /// Errors out (usage + exit 2) on any parsed flag not in `known`. Call at
  /// subcommand entry with the subcommand's full flag set so a typo fails
  /// fast instead of after minutes of training or a model load.
  void RequireKnown(const std::vector<std::string>& known) const {
    for (const auto& [key, value] : values_) {
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        Fail("unknown flag --" + key);
      }
    }
  }

  void CheckAllUsed() const {
    for (const auto& [key, value] : values_) {
      if (used_.count(key) == 0) {
        Fail("flag --" + key + " is not accepted by this subcommand");
      }
    }
  }

  /// Registers the tool's usage printer; every Fail() then ends with the
  /// usage text so an unknown/malformed flag is self-explaining.
  static void SetUsageHandler(void (*usage)()) { UsageHandler() = usage; }

  [[noreturn]] static void Fail(const std::string& message) {
    std::fprintf(stderr, "error: %s\n", message.c_str());
    if (UsageHandler() != nullptr) UsageHandler()();
    std::exit(2);
  }

 private:
  static void (*&UsageHandler())() {
    static void (*handler)() = nullptr;
    return handler;
  }

  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

}  // namespace transn

#endif  // TRANSN_TOOLS_ARG_PARSE_H_
