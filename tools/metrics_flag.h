#ifndef TRANSN_TOOLS_METRICS_FLAG_H_
#define TRANSN_TOOLS_METRICS_FLAG_H_

#include <cstdio>
#include <string>

#include "arg_parse.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace transn {

/// Reads the --metrics-out flag shared by every transn_cli / transn_serve
/// subcommand. Must be called before Args::CheckAllUsed() so the flag
/// counts as consumed.
inline std::string MetricsOutPath(const Args& args) {
  return args.GetOptionalString("metrics-out");
}

/// Dumps the process-wide observability JSON (metrics + nested spans, schema
/// transn-obs-v1) to `path`; no-op when the flag was absent. A failure is a
/// stderr warning, not an exit-code change — a bad metrics path must not
/// fail an otherwise successful run.
inline void MaybeDumpMetrics(const std::string& path) {
  if (path.empty()) return;
  Status s = obs::DumpDefaultObservability(path);
  if (!s.ok()) {
    std::fprintf(stderr, "warning: --metrics-out: %s\n", s.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "wrote metrics dump %s\n", path.c_str());
}

}  // namespace transn

#endif  // TRANSN_TOOLS_METRICS_FLAG_H_
