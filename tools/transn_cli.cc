// Command-line interface to the TransN library.
//
//   transn_cli generate --dataset AMiner --scale 0.5 --seed 1 --out g.tsv
//   transn_cli stats    --graph g.tsv
//   transn_cli train    --graph g.tsv --out emb.tsv [--method transn|line|
//                        node2vec|mve] [--dim 128] [--iterations 5] ...
//   transn_cli classify --graph g.tsv --embeddings emb.tsv [--repeats 10]
//   transn_cli linkpred --graph g.tsv [--method transn] [--removal 0.4]
//
// Every subcommand exits non-zero with a message on stderr for bad input.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arg_parse.h"
#include "metrics_flag.h"
#include "baselines/line.h"
#include "baselines/mve.h"
#include "baselines/node2vec.h"
#include "core/model_io.h"
#include "core/transn.h"
#include "data/datasets.h"
#include "eval/link_prediction.h"
#include "eval/node_classification.h"
#include "graph/graph_io.h"
#include "util/logging.h"
#include "graph/graph_stats.h"
#include "util/string_util.h"
#include "util/vec.h"

namespace {

using namespace transn;

/// Flags every subcommand accepts (see metrics_flag.h / --no-simd in main).
std::vector<std::string> WithGlobalFlags(std::vector<std::string> flags) {
  flags.push_back("metrics-out");
  flags.push_back("no-simd");
  return flags;
}

/// Flags consumed by TrainTransN/TransNConfigFromArgs (train and linkpred).
std::vector<std::string> TrainFlags() {
  return {"dim",          "iterations",       "seed",
          "threads",      "episode-blocks",   "walk-length",
          "min-walks",    "max-walks",        "encoders",
          "seq-len",      "cross-paths",      "cross-view",
          "simple-walk",  "simple-translator", "translation-tasks",
          "reconstruction-tasks", "checkpoint-every", "save-checkpoint",
          "load-checkpoint", "resume",        "export-serving",
          "export-ann",   "ann-m",            "ann-efc"};
}

std::vector<std::string> TrainCommandFlags(std::vector<std::string> extra) {
  std::vector<std::string> flags = TrainFlags();
  flags.insert(flags.end(), extra.begin(), extra.end());
  return WithGlobalFlags(std::move(flags));
}

HeteroGraph LoadGraphOrDie(const std::string& path) {
  auto g = LoadGraph(path);
  if (!g.ok()) Args::Fail(g.status().ToString());
  return std::move(g).value();
}

int CmdGenerate(const Args& args) {
  args.RequireKnown(WithGlobalFlags({"dataset", "scale", "seed", "out"}));
  std::string dataset = args.GetString("dataset");
  double scale = args.GetDouble("scale", 1.0);
  uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  std::string out = args.GetString("out");
  const std::string metrics_out = MetricsOutPath(args);
  args.CheckAllUsed();

  auto g = MakeDataset(dataset, scale, seed);
  if (!g.ok()) Args::Fail(g.status().ToString());
  Status s = SaveGraph(*g, out);
  if (!s.ok()) Args::Fail(s.ToString());
  std::printf("wrote %s: %zu nodes, %zu edges\n", out.c_str(), g->num_nodes(),
              g->num_edges());
  MaybeDumpMetrics(metrics_out);
  return 0;
}

int CmdStats(const Args& args) {
  args.RequireKnown(WithGlobalFlags({"graph"}));
  HeteroGraph g = LoadGraphOrDie(args.GetString("graph"));
  const std::string metrics_out = MetricsOutPath(args);
  args.CheckAllUsed();
  GraphStats s = ComputeStats(g);
  std::printf("nodes: %zu (%s)\n", s.num_nodes,
              FormatTypeCounts(s.nodes_per_type).c_str());
  std::printf("edges: %zu (%s)\n", s.num_edges,
              FormatTypeCounts(s.edges_per_type).c_str());
  std::printf("labeled: %zu%s\n", s.num_labeled,
              s.labeled_type.empty() ? ""
                                     : (" (" + s.labeled_type + ")").c_str());
  std::printf("average degree: %.2f, density: %.3e\n", s.average_degree,
              s.density);
  MaybeDumpMetrics(metrics_out);
  return 0;
}

TransNConfig TransNConfigFromArgs(const Args& args) {
  TransNConfig cfg;
  cfg.dim = static_cast<size_t>(args.GetInt("dim", 128));
  cfg.iterations = static_cast<size_t>(args.GetInt("iterations", 5));
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  // 1 = sequential (bit-identical to the historical implementation),
  // 0 = all hardware threads, >1 = the deterministic episodic block engine.
  const int64_t threads = args.GetInt("threads", 1);
  CHECK_GE(threads, 0) << "--threads must be >= 0 (0 = all cores)";
  cfg.num_threads = static_cast<size_t>(threads);
  // Episode granularity of the block engine: 1 = static partition, >1 =
  // episode scheduler with that many blocks per worker.
  const int64_t episode_blocks = args.GetInt("episode-blocks", 1);
  CHECK_GE(episode_blocks, 1) << "--episode-blocks must be >= 1";
  cfg.episode_blocks_per_thread = static_cast<size_t>(episode_blocks);
  cfg.walk.walk_length =
      static_cast<size_t>(args.GetInt("walk-length", 80));
  cfg.walk.min_walks_per_node =
      static_cast<size_t>(args.GetInt("min-walks", 10));
  cfg.walk.max_walks_per_node =
      static_cast<size_t>(args.GetInt("max-walks", 32));
  cfg.translator_encoders =
      static_cast<size_t>(args.GetInt("encoders", 6));
  cfg.translator_seq_len = static_cast<size_t>(args.GetInt("seq-len", 8));
  cfg.cross_paths_per_pair =
      static_cast<size_t>(args.GetInt("cross-paths", 100));
  cfg.enable_cross_view = args.GetBool("cross-view", true);
  cfg.simple_walk = args.GetBool("simple-walk", false);
  cfg.simple_translator = args.GetBool("simple-translator", false);
  cfg.enable_translation_tasks = args.GetBool("translation-tasks", true);
  cfg.enable_reconstruction_tasks = args.GetBool("reconstruction-tasks", true);
  // Periodic crash-safe checkpointing: --checkpoint-every N writes an
  // atomic checkpoint to the --save-checkpoint path every N iterations.
  const int64_t every = args.GetInt("checkpoint-every", 0);
  CHECK_GE(every, 0) << "--checkpoint-every must be >= 0";
  cfg.checkpoint_every_iters = static_cast<size_t>(every);
  if (cfg.checkpoint_every_iters > 0) {
    cfg.checkpoint_path = args.GetOptionalString("save-checkpoint");
    if (cfg.checkpoint_path.empty()) {
      Args::Fail("--checkpoint-every requires --save-checkpoint <path>");
    }
  }
  return cfg;
}

/// Trains (or restores) a TransN model with the checkpoint / serving-export
/// plumbing: --load-checkpoint restores the matrices before training (use
/// --iterations 0 to skip training entirely and just re-export), --resume
/// additionally restores the iteration counter, RNG, and Adam state so the
/// run continues bit-for-bit where it was interrupted; --save-checkpoint and
/// --export-serving write the trained model out, and --checkpoint-every N
/// checkpoints mid-training.
Matrix TrainTransN(const HeteroGraph& g, const Args& args) {
  TransNModel model(&g, TransNConfigFromArgs(args));
  const std::string load_ckpt = args.GetOptionalString("load-checkpoint");
  const std::string resume_ckpt = args.GetOptionalString("resume");
  if (!load_ckpt.empty() && !resume_ckpt.empty()) {
    Args::Fail("--load-checkpoint and --resume are mutually exclusive");
  }
  if (!load_ckpt.empty()) {
    Status s = LoadTransNCheckpoint(&model, load_ckpt);
    if (!s.ok()) Args::Fail(s.ToString());
    std::printf("restored checkpoint %s\n", load_ckpt.c_str());
  }
  if (!resume_ckpt.empty()) {
    Status s = ResumeTransNCheckpoint(&model, resume_ckpt);
    if (!s.ok()) Args::Fail(s.ToString());
    std::printf("resuming from checkpoint %s at iteration %zu/%zu\n",
                resume_ckpt.c_str(), model.completed_iterations(),
                model.config().iterations);
  }
  model.Fit();
  const std::string save_ckpt = args.GetOptionalString("save-checkpoint");
  if (!save_ckpt.empty()) {
    Status s = SaveTransNCheckpoint(model, save_ckpt);
    if (!s.ok()) Args::Fail(s.ToString());
    std::printf("wrote checkpoint %s\n", save_ckpt.c_str());
  }
  const std::string serving = args.GetOptionalString("export-serving");
  if (!serving.empty()) {
    // --export-ann embeds an HNSW-style ANN index over the final embeddings
    // (serving format v3; see docs/FORMATS.md) so `transn_serve --index
    // hnsw` skips the at-load graph build.
    ServingExportOptions export_opts;
    export_opts.ann_index = args.GetBool("export-ann", false);
    const int64_t ann_m = args.GetInt("ann-m", 16);
    const int64_t ann_efc = args.GetInt("ann-efc", 100);
    CHECK(ann_m >= 2 && ann_m <= 1024) << "--ann-m must be in [2, 1024]";
    CHECK_GE(ann_efc, 1) << "--ann-efc must be >= 1";
    export_opts.ann_params.max_degree = static_cast<size_t>(ann_m);
    export_opts.ann_params.ef_construction = static_cast<size_t>(ann_efc);
    export_opts.ann_params.seed = model.config().seed;
    // The training --threads pool size also drives the export-time graph
    // build; the file bytes are the same at any thread count.
    export_opts.ann_build_threads = model.config().num_threads;
    Status s = ExportServingModel(model, serving, export_opts);
    if (!s.ok()) Args::Fail(s.ToString());
    std::printf("wrote serving model %s (query with transn_serve)\n",
                serving.c_str());
  }
  return model.FinalEmbeddings();
}

Matrix TrainByMethod(const HeteroGraph& g, const std::string& method,
                     const Args& args) {
  const size_t dim = static_cast<size_t>(args.GetInt("dim", 128));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  if (method == "transn") {
    return TrainTransN(g, args);
  }
  if (method == "line") {
    return RunLine(g, {.dim = dim, .seed = seed});
  }
  if (method == "node2vec") {
    Node2VecBaselineConfig cfg;
    cfg.dim = dim;
    cfg.seed = seed;
    return RunNode2Vec(g, cfg);
  }
  if (method == "mve") {
    MveConfig cfg;
    cfg.dim = dim;
    cfg.seed = seed;
    return RunMve(g, cfg);
  }
  Args::Fail("unknown --method '" + method +
             "' (transn|line|node2vec|mve)");
}

int CmdTrain(const Args& args) {
  args.RequireKnown(TrainCommandFlags({"graph", "out", "method"}));
  HeteroGraph g = LoadGraphOrDie(args.GetString("graph"));
  std::string out = args.GetString("out");
  std::string method = args.GetString("method", "transn");
  const std::string metrics_out = MetricsOutPath(args);
  Matrix emb = TrainByMethod(g, method, args);
  args.CheckAllUsed();
  Status s = SaveEmbeddings(g, emb, out);
  if (!s.ok()) Args::Fail(s.ToString());
  std::printf("wrote %s: %zu x %zu embeddings (%s)\n", out.c_str(),
              emb.rows(), emb.cols(), method.c_str());
  MaybeDumpMetrics(metrics_out);
  return 0;
}

int CmdClassify(const Args& args) {
  args.RequireKnown(
      WithGlobalFlags({"graph", "embeddings", "repeats", "seed"}));
  HeteroGraph g = LoadGraphOrDie(args.GetString("graph"));
  auto loaded = LoadEmbeddings(args.GetString("embeddings"));
  if (!loaded.ok()) Args::Fail(loaded.status().ToString());
  if (loaded->embeddings.rows() != g.num_nodes()) {
    Args::Fail("embedding row count does not match the graph");
  }
  NodeClassificationConfig eval;
  eval.repeats = static_cast<size_t>(args.GetInt("repeats", 10));
  eval.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  const std::string metrics_out = MetricsOutPath(args);
  args.CheckAllUsed();
  auto res = EvaluateNodeClassification(g, loaded->embeddings, eval);
  std::printf("macro-F1 %.4f +/- %.4f\nmicro-F1 %.4f +/- %.4f\n",
              res.macro_f1, res.macro_f1_stddev, res.micro_f1,
              res.micro_f1_stddev);
  MaybeDumpMetrics(metrics_out);
  return 0;
}

int CmdLinkpred(const Args& args) {
  args.RequireKnown(
      TrainCommandFlags({"graph", "method", "removal", "task-seed"}));
  HeteroGraph g = LoadGraphOrDie(args.GetString("graph"));
  LinkPredictionConfig task_cfg;
  task_cfg.removal_fraction = args.GetDouble("removal", 0.4);
  task_cfg.seed = static_cast<uint64_t>(args.GetInt("task-seed", 13));
  LinkPredictionTask task = MakeLinkPredictionTask(g, task_cfg);
  std::string method = args.GetString("method", "transn");
  const std::string metrics_out = MetricsOutPath(args);
  Matrix emb = TrainByMethod(task.residual, method, args);
  args.CheckAllUsed();
  std::printf("AUC %.4f (%zu held-out edges, method %s)\n",
              ScoreLinkPrediction(emb, task), task.positives.size(),
              method.c_str());
  MaybeDumpMetrics(metrics_out);
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: transn_cli <generate|stats|train|classify|linkpred> --flags\n"
      "  generate --dataset <AMiner|BLOG|App-Daily|App-Weekly> --out g.tsv\n"
      "           [--scale 1.0] [--seed 42]\n"
      "  stats    --graph g.tsv\n"
      "  train    --graph g.tsv --out emb.tsv [--method transn] [--dim 128]\n"
      "           [--iterations 5] [--walk-length 80] [--encoders 6]\n"
      "           [--threads 1]  (0 = all cores; >1 = episodic block\n"
      "           engine, deterministic per (seed, threads, episode-blocks))\n"
      "           [--episode-blocks 1]  (node blocks per worker; >1 enables\n"
      "           the episode scheduler)\n"
      "           [--save-checkpoint m.ckpt] [--load-checkpoint m.ckpt]\n"
      "           [--checkpoint-every N]  (atomic mid-training checkpoints\n"
      "           to the --save-checkpoint path every N iterations)\n"
      "           [--resume m.ckpt]  (continue an interrupted run: restores\n"
      "           weights, iteration, RNG, and Adam state bit-for-bit)\n"
      "           [--export-serving m.bin]  (binary model for transn_serve)\n"
      "           [--export-ann true] [--ann-m 16] [--ann-efc 100]\n"
      "             (embed an hnsw ANN index in the export; format v3;\n"
      "             built on the --threads pool, bytes identical at any\n"
      "             thread count)\n"
      "  classify --graph g.tsv --embeddings emb.tsv [--repeats 10]\n"
      "  linkpred --graph g.tsv [--method transn] [--removal 0.4]\n"
      "every subcommand accepts [--metrics-out m.json] to dump the\n"
      "observability JSON (metric registry + nested trace spans) at exit,\n"
      "and [--no-simd true] to force the scalar vector kernels (same effect\n"
      "as TRANSN_NO_SIMD=1; see src/util/vec.h)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  SetMinLogSeverity(LogSeverity::kWarning);
  Args::SetUsageHandler(&Usage);
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  // Kernel escape hatch; the TRANSN_NO_SIMD env var works too (util/vec.h).
  if (args.GetBool("no-simd", false)) vec::SetSimdEnabled(false);
  if (command == "generate") return CmdGenerate(args);
  if (command == "stats") return CmdStats(args);
  if (command == "train") return CmdTrain(args);
  if (command == "classify") return CmdClassify(args);
  if (command == "linkpred") return CmdLinkpred(args);
  Usage();
  return 2;
}
