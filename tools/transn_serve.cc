// Embedding serving CLI: answers k-NN similarity queries from a binary
// serving model exported by `transn_cli train --export-serving model.bin`.
//
//   transn_serve info  --model model.bin
//   transn_serve query --model model.bin [--view final|<edge-type name>]
//                      [--k 10] [--metric cosine|dot] [--index exact|quantized]
//                      [--centroids 0] [--nprobe 0] [--threads 1]
//                      [--queries names.txt] [--sample 0] [--warmup 0]
//
// Query mode reads node names (one per line; '#' comments skipped) from
// --queries, or stdin when neither --queries nor --sample is given, and
// prints one line per neighbor:
//
//   <query>  <rank>  <neighbor>  <score>  [via <view chain>]
//
// A node absent from the target view is answered through the cold-start
// translation path (its embedding from another view pushed through the
// stored translator chain). At exit the per-request latency histogram
// (p50/p95/p99), wall-clock QPS, and error count go to stderr.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arg_parse.h"
#include "metrics_flag.h"
#include "serve/embedding_store.h"
#include "serve/query_server.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/vec.h"

namespace {

using namespace transn;

EmbeddingStore LoadStoreOrDie(const Args& args) {
  auto store = EmbeddingStore::Load(args.GetString("model"));
  if (!store.ok()) Args::Fail(store.status().ToString());
  return std::move(store).value();
}

int CmdInfo(const Args& args) {
  EmbeddingStore store = LoadStoreOrDie(args);
  const std::string metrics_out = MetricsOutPath(args);
  args.CheckAllUsed();
  std::printf("serving model: %zu nodes, dim %zu, %zu views, "
              "%zu translators (seq len %zu)\n",
              store.num_nodes(), store.dim(), store.views().size(),
              store.translators().size(), store.seq_len());
  for (size_t i = 0; i < store.views().size(); ++i) {
    const ServingView& v = store.view(i);
    std::printf("  view %zu '%s': %zu nodes (%s)\n", i, v.name.c_str(),
                v.global_ids.size(), v.is_heter ? "heter" : "homo");
  }
  for (const ServingTranslator& t : store.translators()) {
    std::printf("  translator %s -> %s: %zu encoder(s)%s\n",
                store.view(t.from_view).name.c_str(),
                store.view(t.to_view).name.c_str(), t.weights.size(),
                t.simple ? " [simple]" : "");
  }
  MaybeDumpMetrics(metrics_out);
  return 0;
}

std::vector<std::string> ReadQueries(const Args& args,
                                     const EmbeddingStore& store) {
  std::vector<std::string> queries;
  const int64_t sample = args.GetInt("sample", 0);
  const std::string path = args.GetOptionalString("queries");
  if (sample > 0) {
    if (!path.empty()) Args::Fail("--queries and --sample are exclusive");
    for (int64_t i = 0; i < sample; ++i) {
      queries.push_back(store.node_name(
          static_cast<NodeId>(i % static_cast<int64_t>(store.num_nodes()))));
    }
    return queries;
  }
  std::ifstream file;
  if (!path.empty() && path != "-") {
    file.open(path);
    if (!file) Args::Fail("cannot open --queries file: " + path);
  }
  std::istream& in = file.is_open() ? file : std::cin;
  std::string line;
  while (std::getline(in, line)) {
    std::string name(Trim(line));
    if (name.empty() || name[0] == '#') continue;
    queries.push_back(std::move(name));
  }
  return queries;
}

int CmdQuery(const Args& args) {
  EmbeddingStore store = LoadStoreOrDie(args);

  QueryServerOptions opts;
  const std::string view_name = args.GetString("view", "final");
  if (view_name != "final") {
    opts.target_view = store.FindViewByName(view_name);
    if (opts.target_view < 0) Args::Fail("no view named '" + view_name + "'");
  }
  opts.k = static_cast<size_t>(args.GetInt("k", 10));
  const std::string metric = args.GetString("metric", "cosine");
  if (metric == "cosine") {
    opts.metric = KnnMetric::kCosine;
  } else if (metric == "dot") {
    opts.metric = KnnMetric::kDot;
  } else {
    Args::Fail("bad --metric '" + metric + "' (cosine|dot)");
  }
  const std::string index = args.GetString("index", "exact");
  if (index == "quantized") {
    opts.quantized = true;
  } else if (index != "exact") {
    Args::Fail("bad --index '" + index + "' (exact|quantized)");
  }
  opts.num_centroids = static_cast<size_t>(args.GetInt("centroids", 0));
  opts.nprobe = static_cast<size_t>(args.GetInt("nprobe", 0));
  const int64_t threads = args.GetInt("threads", 1);
  if (threads < 0) Args::Fail("--threads must be >= 0 (0 = all cores)");
  opts.num_threads = static_cast<size_t>(threads);
  const int64_t warmup = args.GetInt("warmup", 0);
  const std::string metrics_out = MetricsOutPath(args);
  std::vector<std::string> queries = ReadQueries(args, store);
  args.CheckAllUsed();

  QueryServer server(&store, opts);
  if (warmup > 0) server.Warmup(static_cast<size_t>(warmup));

  WallTimer wall;
  std::vector<QueryResponse> responses = server.HandleBatch(queries);
  const double wall_seconds = wall.ElapsedSeconds();

  size_t errors = 0;
  for (size_t q = 0; q < responses.size(); ++q) {
    const QueryResponse& resp = responses[q];
    if (!resp.status.ok()) {
      std::printf("# %s: %s\n", queries[q].c_str(),
                  resp.status.ToString().c_str());
      ++errors;
      continue;
    }
    std::string via;
    if (resp.translated) {
      via = "\tvia";
      for (uint32_t v : resp.chain) via += " " + store.view(v).name;
    }
    for (size_t r = 0; r < resp.neighbors.size(); ++r) {
      std::printf("%s\t%zu\t%s\t%.6f%s\n", queries[q].c_str(), r + 1,
                  store.node_name(resp.neighbors[r].node).c_str(),
                  resp.neighbors[r].score, via.c_str());
    }
  }

  const LatencyHistogram& lat = server.latency();
  std::fprintf(stderr,
               "served %zu queries (%zu failed) in %.3fs: %.0f QPS "
               "wall-clock, latency %s\n",
               queries.size(), errors, wall_seconds,
               wall_seconds > 0.0
                   ? static_cast<double>(queries.size()) / wall_seconds
                   : 0.0,
               lat.Summary().c_str());
  // The same p50/p95/p99 data is in the JSON dump under
  // serve.request_latency_seconds.
  MaybeDumpMetrics(metrics_out);
  return errors == 0 ? 0 : 1;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: transn_serve <info|query> --model model.bin [--flags]\n"
      "  info   --model model.bin\n"
      "  query  --model model.bin [--view final|<edge-type>] [--k 10]\n"
      "         [--metric cosine|dot] [--index exact|quantized]\n"
      "         [--centroids 0] [--nprobe 0] [--threads 1]\n"
      "         [--queries names.txt|-] [--sample 0] [--warmup 0]\n"
      "both subcommands accept [--metrics-out m.json] to dump the\n"
      "observability JSON (metric registry + nested trace spans) at exit,\n"
      "and [--no-simd true] to force the scalar vector kernels (same effect\n"
      "as TRANSN_NO_SIMD=1; see src/util/vec.h)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  SetMinLogSeverity(LogSeverity::kWarning);
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  // Kernel escape hatch; the TRANSN_NO_SIMD env var works too (util/vec.h).
  if (args.GetBool("no-simd", false)) vec::SetSimdEnabled(false);
  if (command == "info") return CmdInfo(args);
  if (command == "query") return CmdQuery(args);
  Usage();
  return 2;
}
