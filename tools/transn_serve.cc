// Embedding serving CLI: answers k-NN similarity queries from a binary
// serving model exported by `transn_cli train --export-serving model.bin`.
//
//   transn_serve info  --model model.bin
//   transn_serve query --model model.bin [--view final|<edge-type name>]
//                      [--k 10] [--metric cosine|dot]
//                      [--index exact|quantized|hnsw] [--centroids 0]
//                      [--nprobe 0] [--ef 0] [--ann-m 16] [--ann-efc 100]
//                      [--threads 1] [--queries names.txt] [--sample 0]
//                      [--warmup 0]
//   transn_serve index --model model.bin --out model_v3.bin
//                      [--view final|<edge-type name>] [--metric cosine|dot]
//                      [--ann-m 16] [--ann-efc 100] [--seed 42]
//                      [--threads 1]  (0 = all cores; same bytes regardless)
//   transn_serve serve --model model.bin [--listen 127.0.0.1:8080]
//                      [--reactor-threads N] [--max-queue N] [--max-batch N]
//
// `index` embeds a pre-built HNSW-style ANN graph into a copy of the model
// (serving format v3, docs/FORMATS.md) so servers skip the build at load.
//
// `serve` exposes the query path over HTTP (src/net/serve_app.h documents
// the endpoints); SIGHUP or POST /admin/reload atomically hot-swaps the
// model with zero dropped in-flight queries.
//
// Query mode reads node names (one per line; '#' comments skipped) from
// --queries, or stdin when neither --queries nor --sample is given, and
// prints one line per neighbor:
//
//   <query>  <rank>  <neighbor>  <score>  [via <view chain>]
//
// A node absent from the target view is answered through the cold-start
// translation path (its embedding from another view pushed through the
// stored translator chain). At exit the per-request latency histogram
// (p50/p95/p99), wall-clock QPS, and error count go to stderr.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arg_parse.h"
#include "metrics_flag.h"
#include "net/http_server.h"
#include "net/serve_app.h"
#include "obs/metric_names.h"
#include "serve/embedding_store.h"
#include "serve/query_server.h"
#include "serve/serving_writer.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/vec.h"

namespace {

using namespace transn;

/// Flags every subcommand accepts (see metrics_flag.h / --no-simd in main).
std::vector<std::string> WithGlobalFlags(std::vector<std::string> flags) {
  flags.push_back("metrics-out");
  flags.push_back("no-simd");
  return flags;
}

/// QueryServerOptions flags shared by `query` and `serve`.
std::vector<std::string> QueryOptionFlags() {
  return {"model", "view",   "k",      "metric",  "index", "centroids",
          "nprobe", "ef",    "ann-m",  "ann-efc", "threads", "warmup"};
}

EmbeddingStore LoadStoreOrDie(const Args& args) {
  auto store = EmbeddingStore::Load(args.GetString("model"));
  if (!store.ok()) Args::Fail(store.status().ToString());
  return std::move(store).value();
}

/// Parses the QueryServerOptions flags. View names are resolved against
/// `store` when given; with a null store (serve mode, where the store is
/// loaded later and hot-swapped) --view must be "final" or a view index.
QueryServerOptions QueryOptionsFromArgs(const Args& args,
                                        const EmbeddingStore* store) {
  QueryServerOptions opts;
  const std::string view_name = args.GetString("view", "final");
  if (view_name != "final") {
    if (store != nullptr) {
      opts.target_view = store->FindViewByName(view_name);
      if (opts.target_view < 0) {
        Args::Fail("no view named '" + view_name + "'");
      }
    } else {
      int64_t index = 0;
      if (!ParseInt64(view_name, &index) || index < 0) {
        Args::Fail("serve mode takes --view final|<index> (names resolve "
                   "against a hot-swappable store)");
      }
      opts.target_view = static_cast<int>(index);
    }
  }
  opts.k = static_cast<size_t>(args.GetInt("k", 10));
  const std::string metric = args.GetString("metric", "cosine");
  if (metric == "cosine") {
    opts.metric = KnnMetric::kCosine;
  } else if (metric == "dot") {
    opts.metric = KnnMetric::kDot;
  } else {
    Args::Fail("bad --metric '" + metric + "' (cosine|dot)");
  }
  const std::string index = args.GetString("index", "exact");
  if (!ParseServeIndexKind(index, &opts.index_kind)) {
    Args::Fail("bad --index '" + index + "' (exact|quantized|hnsw)");
  }
  opts.num_centroids = static_cast<size_t>(args.GetInt("centroids", 0));
  opts.nprobe = static_cast<size_t>(args.GetInt("nprobe", 0));
  const int64_t ef = args.GetInt("ef", 0);
  if (ef < 0) Args::Fail("--ef must be >= 0 (0 = default 128)");
  opts.ef_search = static_cast<size_t>(ef);
  const int64_t ann_m = args.GetInt("ann-m", 16);
  const int64_t ann_efc = args.GetInt("ann-efc", 100);
  if (ann_m < 2 || ann_m > 1024) Args::Fail("--ann-m must be in [2, 1024]");
  if (ann_efc < 1) Args::Fail("--ann-efc must be >= 1");
  opts.ann_params.max_degree = static_cast<size_t>(ann_m);
  opts.ann_params.ef_construction = static_cast<size_t>(ann_efc);
  const int64_t threads = args.GetInt("threads", 1);
  if (threads < 0) Args::Fail("--threads must be >= 0 (0 = all cores)");
  opts.num_threads = static_cast<size_t>(threads);
  return opts;
}

int CmdInfo(const Args& args) {
  args.RequireKnown(WithGlobalFlags({"model"}));
  EmbeddingStore store = LoadStoreOrDie(args);
  const std::string metrics_out = MetricsOutPath(args);
  args.CheckAllUsed();
  std::printf("serving model: %zu nodes, dim %zu, %zu views, "
              "%zu translators (seq len %zu), format v%d\n",
              store.num_nodes(), store.dim(), store.views().size(),
              store.translators().size(), store.seq_len(),
              store.format_version());
  for (size_t i = 0; i < store.views().size(); ++i) {
    const ServingView& v = store.view(i);
    std::printf("  view %zu '%s': %zu nodes (%s)\n", i, v.name.c_str(),
                v.global_ids.size(), v.is_heter ? "heter" : "homo");
  }
  for (const ServingTranslator& t : store.translators()) {
    std::printf("  translator %s -> %s: %zu encoder(s)%s\n",
                store.view(t.from_view).name.c_str(),
                store.view(t.to_view).name.c_str(), t.weights.size(),
                t.simple ? " [simple]" : "");
  }
  if (const AnnIndex* ann = store.ann_index()) {
    const int tv = store.ann_target_view();
    std::printf(
        "  ann index: target %s, metric %s, M %zu, ef_construction %zu, "
        "seed %llu, %zu rows, max level %d, avg degree %.1f\n",
        tv < 0 ? "final" : store.view(static_cast<size_t>(tv)).name.c_str(),
        ann->metric() == KnnMetric::kCosine ? "cosine" : "dot",
        ann->params().max_degree, ann->params().ef_construction,
        static_cast<unsigned long long>(ann->params().seed), ann->num_rows(),
        ann->max_level(), ann->avg_degree());
  } else {
    std::printf("  ann index: none (index types: exact, quantized, or hnsw "
                "built at load)\n");
  }
  MaybeDumpMetrics(metrics_out);
  return 0;
}

// Builds an ANN index over the chosen target matrix and writes a v3 copy of
// the model with the index embedded, so `serve --index hnsw` skips the
// at-load graph build. Deterministic: same model + flags => same bytes.
int CmdIndex(const Args& args) {
  args.RequireKnown(WithGlobalFlags(
      {"model", "out", "view", "metric", "ann-m", "ann-efc", "seed",
       "threads"}));
  EmbeddingStore store = LoadStoreOrDie(args);
  const std::string out = args.GetString("out");
  int target_view = -1;
  const std::string view_name = args.GetString("view", "final");
  if (view_name != "final") {
    target_view = store.FindViewByName(view_name);
    if (target_view < 0) Args::Fail("no view named '" + view_name + "'");
  }
  const std::string metric_name = args.GetString("metric", "cosine");
  KnnMetric metric = KnnMetric::kCosine;
  if (metric_name == "dot") {
    metric = KnnMetric::kDot;
  } else if (metric_name != "cosine") {
    Args::Fail("bad --metric '" + metric_name + "' (cosine|dot)");
  }
  AnnBuildParams params;
  const int64_t ann_m = args.GetInt("ann-m", 16);
  const int64_t ann_efc = args.GetInt("ann-efc", 100);
  if (ann_m < 2 || ann_m > 1024) Args::Fail("--ann-m must be in [2, 1024]");
  if (ann_efc < 1) Args::Fail("--ann-efc must be >= 1");
  params.max_degree = static_cast<size_t>(ann_m);
  params.ef_construction = static_cast<size_t>(ann_efc);
  params.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const int64_t threads = args.GetInt("threads", 1);
  if (threads < 0) Args::Fail("--threads must be >= 0 (0 = all cores)");
  const std::string metrics_out = MetricsOutPath(args);
  args.CheckAllUsed();

  if (target_view < 0 && !store.has_final_embeddings()) {
    Args::Fail("model has no final embeddings; pick --view <edge-type>");
  }
  const Matrix& target =
      target_view < 0 ? store.final_embeddings()
                      : store.view(static_cast<size_t>(target_view)).embeddings;
  // The build is batch-synchronous: any --threads value emits the same v3
  // bytes (docs/FORMATS.md), so offline indexing can use every core.
  std::unique_ptr<ThreadPool> pool;
  if (threads != 1) {
    pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
  }
  StatusOr<AnnIndex> built = AnnIndex::Build(target, metric, params,
                                             pool.get());
  if (!built.ok()) Args::Fail(built.status().ToString());
  AnnIndex ann = std::move(built).value();
  const size_t build_threads = pool != nullptr ? pool->num_threads() : 1;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  registry
      .GetHistogram(obs::kAnnBuildSeconds, "seconds",
                    "ANN index build (or v3 load + code rebuild) time")
      ->Record(ann.build_seconds());
  registry
      .GetGauge(obs::kAnnBuildThreads, "threads",
                "worker threads the ANN build/load ran with")
      ->Set(static_cast<double>(build_threads));
  std::fprintf(stderr,
               "built ann index: %zu rows, max level %d, avg degree %.1f "
               "in %.2fs (%zu thread%s)\n",
               ann.num_rows(), ann.max_level(), ann.avg_degree(),
               ann.build_seconds(), build_threads,
               build_threads == 1 ? "" : "s");

  ServingWriteOptions write_opts;
  write_opts.ann = &ann;
  write_opts.ann_target_view = target_view;
  Status status = WriteServingModel(store, out, write_opts);
  if (!status.ok()) Args::Fail(status.ToString());
  std::printf("wrote %s (serving format v3)\n", out.c_str());
  MaybeDumpMetrics(metrics_out);
  return 0;
}

std::vector<std::string> ReadQueries(const Args& args,
                                     const EmbeddingStore& store) {
  std::vector<std::string> queries;
  const int64_t sample = args.GetInt("sample", 0);
  const std::string path = args.GetOptionalString("queries");
  if (sample > 0) {
    if (!path.empty()) Args::Fail("--queries and --sample are exclusive");
    for (int64_t i = 0; i < sample; ++i) {
      queries.push_back(store.node_name(
          static_cast<NodeId>(i % static_cast<int64_t>(store.num_nodes()))));
    }
    return queries;
  }
  std::ifstream file;
  if (!path.empty() && path != "-") {
    file.open(path);
    if (!file) Args::Fail("cannot open --queries file: " + path);
  }
  std::istream& in = file.is_open() ? file : std::cin;
  std::string line;
  while (std::getline(in, line)) {
    std::string name(Trim(line));
    if (name.empty() || name[0] == '#') continue;
    queries.push_back(std::move(name));
  }
  return queries;
}

int CmdQuery(const Args& args) {
  {
    std::vector<std::string> flags = QueryOptionFlags();
    flags.push_back("queries");
    flags.push_back("sample");
    args.RequireKnown(WithGlobalFlags(std::move(flags)));
  }
  EmbeddingStore store = LoadStoreOrDie(args);
  QueryServerOptions opts = QueryOptionsFromArgs(args, &store);
  const int64_t warmup = args.GetInt("warmup", 0);
  const std::string metrics_out = MetricsOutPath(args);
  std::vector<std::string> queries = ReadQueries(args, store);
  args.CheckAllUsed();

  QueryServer server(&store, opts);
  if (warmup > 0) server.Warmup(static_cast<size_t>(warmup));

  WallTimer wall;
  std::vector<QueryResponse> responses = server.HandleBatch(queries);
  const double wall_seconds = wall.ElapsedSeconds();

  size_t errors = 0;
  for (size_t q = 0; q < responses.size(); ++q) {
    const QueryResponse& resp = responses[q];
    if (!resp.status.ok()) {
      std::printf("# %s: %s\n", queries[q].c_str(),
                  resp.status.ToString().c_str());
      ++errors;
      continue;
    }
    std::string via;
    if (resp.translated) {
      via = "\tvia";
      for (uint32_t v : resp.chain) via += " " + store.view(v).name;
    }
    for (size_t r = 0; r < resp.neighbors.size(); ++r) {
      std::printf("%s\t%zu\t%s\t%.6f%s\n", queries[q].c_str(), r + 1,
                  store.node_name(resp.neighbors[r].node).c_str(),
                  resp.neighbors[r].score, via.c_str());
    }
  }

  const LatencyHistogram& lat = server.latency();
  std::fprintf(stderr,
               "served %zu queries (%zu failed) in %.3fs: %.0f QPS "
               "wall-clock, latency %s\n",
               queries.size(), errors, wall_seconds,
               wall_seconds > 0.0
                   ? static_cast<double>(queries.size()) / wall_seconds
                   : 0.0,
               lat.Summary().c_str());
  // The same p50/p95/p99 data is in the JSON dump under
  // serve.request_latency_seconds.
  MaybeDumpMetrics(metrics_out);
  return errors == 0 ? 0 : 1;
}

// --- serve: HTTP front end -------------------------------------------------

std::atomic<bool> g_shutdown{false};
net::ServeApp* g_app = nullptr;

void OnSignal(int sig) {
  if (sig == SIGHUP) {
    if (g_app != nullptr) g_app->TriggerReloadFromSignal();
    return;
  }
  g_shutdown.store(true, std::memory_order_release);
}

int CmdServe(const Args& args) {
  {
    std::vector<std::string> flags = QueryOptionFlags();
    for (const char* f :
         {"listen", "reactor-threads", "max-queue", "max-batch",
          "max-connections", "read-timeout-ms", "write-timeout-ms",
          "idle-timeout-ms", "default-deadline-ms", "degradation"}) {
      flags.push_back(f);
    }
    args.RequireKnown(WithGlobalFlags(std::move(flags)));
  }

  net::ServeAppOptions app_opts;
  app_opts.model_path = args.GetString("model");
  app_opts.query = QueryOptionsFromArgs(args, /*store=*/nullptr);
  app_opts.max_queue = static_cast<size_t>(args.GetInt("max-queue", 1024));
  app_opts.max_batch = static_cast<size_t>(args.GetInt("max-batch", 64));
  app_opts.warmup_queries = static_cast<size_t>(args.GetInt("warmup", 0));
  app_opts.default_deadline_ms =
      static_cast<int>(args.GetInt("default-deadline-ms", 0));
  app_opts.enable_degradation = args.GetBool("degradation", true);

  net::HttpServerOptions http_opts;
  const std::string listen = args.GetString("listen", "127.0.0.1:8080");
  const size_t colon = listen.rfind(':');
  if (colon == std::string::npos) {
    Args::Fail("--listen must be host:port (e.g. 127.0.0.1:8080)");
  }
  http_opts.host = listen.substr(0, colon);
  int64_t port = 0;
  if (!ParseInt64(listen.substr(colon + 1), &port) || port < 0 ||
      port > 65535) {
    Args::Fail("bad --listen port in '" + listen + "'");
  }
  http_opts.port = static_cast<uint16_t>(port);
  http_opts.reactor_threads =
      static_cast<size_t>(args.GetInt("reactor-threads", 1));
  http_opts.max_connections =
      static_cast<size_t>(args.GetInt("max-connections", 1024));
  http_opts.read_timeout_ms =
      static_cast<int>(args.GetInt("read-timeout-ms", 10'000));
  http_opts.write_timeout_ms =
      static_cast<int>(args.GetInt("write-timeout-ms", 10'000));
  http_opts.idle_timeout_ms =
      static_cast<int>(args.GetInt("idle-timeout-ms", 30'000));
  const std::string metrics_out = MetricsOutPath(args);
  args.CheckAllUsed();

  net::ServeApp app(app_opts);
  Status status = app.Start();
  if (!status.ok()) Args::Fail(status.ToString());

  net::HttpServer server(
      http_opts, [&app](net::HttpRequest&& request, net::ResponseHandle h) {
        app.HandleRequest(std::move(request), std::move(h));
      });
  status = server.Start();
  if (!status.ok()) Args::Fail(status.ToString());

  g_app = &app;
  struct sigaction sa = {};
  sa.sa_handler = &OnSignal;
  sigaction(SIGHUP, &sa, nullptr);   // hot reload
  sigaction(SIGINT, &sa, nullptr);   // graceful shutdown
  sigaction(SIGTERM, &sa, nullptr);

  // Parsed by the smoke script / load harness; keep the format stable.
  std::printf("listening on http://%s:%u (%zu reactors, pid %d)\n",
              http_opts.host.c_str(), server.port(), server.reactor_threads(),
              static_cast<int>(getpid()));
  std::fflush(stdout);

  while (!g_shutdown.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "shutting down\n");
  server.Stop();  // stop intake; outstanding Sends become no-ops
  app.Stop();     // drain the queue
  g_app = nullptr;
  MaybeDumpMetrics(metrics_out);
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: transn_serve <info|query|index|serve> --model model.bin "
      "[--flags]\n"
      "  info   --model model.bin\n"
      "  query  --model model.bin [--view final|<edge-type>] [--k 10]\n"
      "         [--metric cosine|dot] [--index exact|quantized|hnsw]\n"
      "         [--centroids 0] [--nprobe 0] [--ef 0] [--ann-m 16]\n"
      "         [--ann-efc 100] [--threads 1]\n"
      "         [--queries names.txt|-] [--sample 0] [--warmup 0]\n"
      "  index  --model model.bin --out model_v3.bin\n"
      "         [--view final|<edge-type>] [--metric cosine|dot]\n"
      "         [--ann-m 16] [--ann-efc 100] [--seed 42] [--threads 1]\n"
      "         (embeds a pre-built hnsw graph; serving format v3;\n"
      "         --threads 0 = all cores, output bytes identical)\n"
      "  serve  --model model.bin [--listen 127.0.0.1:8080]\n"
      "         [--reactor-threads 1]  (0 = one per hardware thread)\n"
      "         [--max-queue 1024] [--max-batch 64] [--max-connections 1024]\n"
      "         [--read-timeout-ms 10000] [--write-timeout-ms 10000]\n"
      "         [--idle-timeout-ms 30000] [--view final|<index>] [--k 10]\n"
      "         [--metric cosine|dot] [--index exact|quantized|hnsw]\n"
      "         [--ef 0] [--threads 1]\n"
      "         [--warmup 0]  (warmup queries per model generation)\n"
      "         [--default-deadline-ms 0]  (0 = requests wait forever;\n"
      "         clients override per request with X-Transn-Deadline-Ms)\n"
      "         [--degradation true]  (graded degradation under pressure;\n"
      "         see docs/SERVING.md \"Degraded modes\")\n"
      "         endpoints: /v1/knn?node= /v1/translate?node=&view= /healthz\n"
      "         /metrics, POST /admin/reload[?path=]; SIGHUP hot-reloads\n"
      "all subcommands accept [--metrics-out m.json] to dump the\n"
      "observability JSON (metric registry + nested trace spans) at exit,\n"
      "and [--no-simd true] to force the scalar vector kernels (same effect\n"
      "as TRANSN_NO_SIMD=1; see src/util/vec.h)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  SetMinLogSeverity(LogSeverity::kWarning);
  Args::SetUsageHandler(&Usage);
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  // Kernel escape hatch; the TRANSN_NO_SIMD env var works too (util/vec.h).
  if (args.GetBool("no-simd", false)) vec::SetSimdEnabled(false);
  if (command == "info") return CmdInfo(args);
  if (command == "query") return CmdQuery(args);
  if (command == "index") return CmdIndex(args);
  if (command == "serve") return CmdServe(args);
  Usage();
  return 2;
}
